//! The concurrent-query serving subsystem (`symnet-serve`).
//!
//! [`VerifyService`](crate::service::VerifyService) serves one query stream
//! at a time; this module serves **many concurrent verification queries
//! against a mutating network** — the regime the ROADMAP calls the path to
//! "millions of users":
//!
//! * A [`ServeHandle`] front-end enqueues typed requests (verify, delta,
//!   snapshot) into a **bounded admission queue**. Admission is a slot held
//!   from enqueue until the reply is sent, so an over-capacity burst is
//!   rejected with [`ServerError::Overloaded`] instead of growing the queue
//!   without bound.
//! * An **epoch manager** pins every admitted query to an immutable
//!   `Arc<Network>` snapshot. A delta clones the topology (copy-on-write),
//!   swaps in a new `Arc` and bumps the epoch counter; in-flight queries keep
//!   exploring the snapshot they were pinned to — the read path takes no lock
//!   and can never observe a torn topology.
//! * Query execution **fans out onto a shared work-stealing pool**: the same
//!   scheduler protocol as the per-run engine (per-worker LIFO deques, FIFO
//!   steal-half batching, overflow injector — see
//!   `engine::StealScheduler`), run in persistent mode so path work from
//!   different queries interleaves on the same long-lived workers. Each unit
//!   of work is a [`PendingPath`](crate::engine) tagged with its query, and
//!   emissions are routed to per-query collectors.
//! * Reports stay **byte-identical to solo runs**: every emitted path carries
//!   the same fork-lineage sort key as in a solo `SymNet::inject`, the
//!   per-query budget makes `max_paths` exact, and the final report is
//!   assembled by the same `finalize_report`. (Solver and scheduler counters
//!   are scheduling-dependent and excluded from canonical reports, exactly as
//!   in the multi-threaded engine.)
//! * Queries may carry a **deadline**; cancellation is cooperative at
//!   checkpoint granularity (each element-entry job checks the flag before
//!   running), and a cancelled query's remaining jobs drain without being
//!   processed, leaving the pool clean and reusable.
//!
//! ```text
//!  clients ──ServeHandle::verify/apply_delta/snapshot──▶ admission queue
//!                (bounded; slot held until reply)            │
//!                                                        dispatcher
//!                         pin epoch ◀── Mutex<{epoch, Arc<Network>}>
//!                              │              ▲ copy-on-write publish
//!                   construct roots           └── ApplyDelta
//!                              │
//!                              ▼ inject
//!                ┌── persistent work-stealing pool ──┐
//!                │ worker 0 │ worker 1 │ … │ worker N │   jobs = (query, path)
//!                └──────────┴──────────┴───┴──────────┘
//!                              │ per-query collectors, budget, cancel flag
//!                              ▼ outstanding == 0
//!                    finalize_report ──▶ reply ticket
//! ```

use crate::engine::{
    finalize_report, panic_message, relock, Ctx, ExecConfig, ExecutionReport, PathBudget,
    PendingPath, RawResult, SchedStats, StealScheduler, SymNet,
};
use crate::error::EngineError;
use crate::network::{ElementId, Network};
use crate::state::ExecState;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use symnet_sefl::{ElementProgram, Instruction};
use symnet_solver::SolverStats;

/// Configuration of a [`SymNetServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads in the shared exploration pool.
    pub workers: usize,
    /// Admission capacity: the maximum number of requests admitted but not
    /// yet replied to (queued or executing). Submissions beyond it fail fast
    /// with [`ServerError::Overloaded`].
    pub capacity: usize,
    /// Per-query execution configuration. The `threads` field is ignored —
    /// parallelism comes from the shared pool, not per-query scoped threads.
    pub exec: ExecConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: ExecConfig::default_threads(),
            capacity: 64,
            exec: ExecConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Returns this configuration with a different pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Returns this configuration with a different admission capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }
}

/// Why the server could not serve a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// The admission queue is at capacity; the request was rejected at the
    /// front door (backpressure, not buffering).
    Overloaded,
    /// The query's deadline passed before its exploration finished; its
    /// remaining path work was discarded and the pool stayed clean.
    DeadlineExceeded,
    /// The server is shutting down (or already gone) and accepts no new work.
    ShuttingDown,
    /// The engine failed while executing the request (a model or engine
    /// defect — the paired query fails, the pool survives).
    Engine(EngineError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded => write!(f, "server overloaded: admission queue at capacity"),
            ServerError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServerError::ShuttingDown => write!(f, "server shutting down"),
            ServerError::Engine(e) => write!(f, "engine failure: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A completed concurrent query: the ordinary [`ExecutionReport`] plus the
/// serving metadata (which epoch the query was pinned to and its wall time
/// from admission to finalization).
#[derive(Debug)]
pub struct ServedReport {
    /// The execution report, byte-identical (in canonical form) to a solo
    /// `SymNet::inject` against the pinned snapshot.
    pub report: ExecutionReport,
    /// The epoch the query was pinned to at dispatch.
    pub epoch: u64,
    /// Wall time from admission to finalization (queueing included).
    pub wall: Duration,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the admission queue.
    pub admitted: u64,
    /// Requests rejected with [`ServerError::Overloaded`].
    pub rejected: u64,
    /// Queries cancelled by their deadline.
    pub cancelled: u64,
    /// Queries that finished and produced a report.
    pub completed: u64,
    /// Queries that failed with an engine error (worker panic).
    pub failed: u64,
    /// Delta publications (each bumps the epoch).
    pub epochs_published: u64,
    /// Snapshot requests served.
    pub snapshots_served: u64,
}

/// Atomic counters behind [`ServerStats`].
#[derive(Default)]
struct StatsCell {
    admitted: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    epochs_published: AtomicU64,
    snapshots_served: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            epochs_published: self.epochs_published.load(Ordering::Relaxed),
            snapshots_served: self.snapshots_served.load(Ordering::Relaxed),
        }
    }
}

/// A typed request travelling through the admission queue.
enum Request {
    Verify {
        element: ElementId,
        input_port: usize,
        packet: Instruction,
        deadline: Option<Instant>,
        queued_at: Instant,
        reply: SyncSender<Result<ServedReport, ServerError>>,
    },
    ApplyDelta {
        element: ElementId,
        program: ElementProgram,
        reply: SyncSender<Result<u64, ServerError>>,
    },
    Snapshot {
        reply: SyncSender<Result<(u64, Arc<Network>), ServerError>>,
    },
}

/// The bounded admission queue: a slot is reserved at submission and released
/// only when the request's reply has been sent, so `in_flight` bounds queued
/// *plus* executing requests — the queue itself can never grow past capacity.
struct Admission {
    state: Mutex<AdmissionState>,
    ready: Condvar,
    capacity: usize,
    in_flight: AtomicUsize,
}

struct AdmissionState {
    queue: VecDeque<Request>,
    closed: bool,
}

impl Admission {
    fn new(capacity: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Reserves a slot and enqueues, or fails fast with backpressure.
    fn try_submit(&self, request: Request) -> Result<(), ServerError> {
        let reserved = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.capacity).then_some(n + 1)
            })
            .is_ok();
        if !reserved {
            return Err(ServerError::Overloaded);
        }
        let mut state = relock(&self.state);
        if state.closed {
            drop(state);
            self.release_slot();
            return Err(ServerError::ShuttingDown);
        }
        state.queue.push_back(request);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a request is available; `None` once the queue is closed
    /// *and* drained (shutdown still serves everything already admitted).
    fn pop(&self) -> Option<Request> {
        let mut state = relock(&self.state);
        loop {
            if let Some(request) = state.queue.pop_front() {
                return Some(request);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait_timeout(state, Duration::from_millis(5))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Closes the queue: new submissions fail with `ShuttingDown`.
    fn close(&self) {
        relock(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Releases an admission slot (the request has been replied to).
    fn release_slot(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }
}

/// The current epoch: a monotonically increasing counter plus the immutable
/// topology snapshot it names. Only the dispatcher writes it (copy-on-write);
/// queries hold their pinned `Arc<Network>` directly and never touch this
/// lock again.
struct EpochState {
    epoch: u64,
    network: Arc<Network>,
}

/// One unit of pool work: a pending path tagged with the query it belongs to.
struct Job {
    query: Arc<QueryTask>,
    path: PendingPath,
}

/// The parts of a query's construction phase needed at finalization.
struct ConstructionParts {
    results: Vec<RawResult>,
    injected: ExecState,
    solver_stats: SolverStats,
}

/// Everything one in-flight query owns: its pinned-epoch engine, its exact
/// path budget, its result collector and its completion/cancellation state.
struct QueryTask {
    engine: SymNet,
    epoch: u64,
    budget: PathBudget,
    /// Jobs queued or executing for this query; the last retirement (reaching
    /// zero) finalizes the query. Seeded with 1 — the dispatcher's own guard —
    /// so finalization cannot race root injection.
    outstanding: AtomicUsize,
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    failure: Mutex<Option<String>>,
    results: Mutex<Vec<RawResult>>,
    construction: Mutex<Option<ConstructionParts>>,
    reply: Mutex<Option<SyncSender<Result<ServedReport, ServerError>>>>,
    started: Instant,
}

impl QueryTask {
    /// True once this query should do no further path work: explicitly
    /// cancelled, past its deadline (first observer flips the flag), or its
    /// report budget is already full.
    fn should_skip(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        self.budget.exhausted()
    }

    /// Records a fatal per-query failure (first message wins) and cancels the
    /// rest of the query's work. The pool itself stays healthy.
    fn fail(&self, message: String) {
        let mut slot = relock(&self.failure);
        if slot.is_none() {
            *slot = Some(message);
        }
        drop(slot);
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Retires one job; the last retirement finalizes the query and sends the
    /// reply.
    fn retire(&self, shared: &Shared) {
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.finalize(shared);
        }
    }

    /// Assembles the outcome and replies exactly once.
    fn finalize(&self, shared: &Shared) {
        let Some(reply) = relock(&self.reply).take() else {
            return;
        };
        let failure = relock(&self.failure).take();
        let outcome = if let Some(message) = failure {
            shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            Err(ServerError::Engine(EngineError::WorkerPanicked { message }))
        } else if self.cancelled.load(Ordering::Relaxed) {
            shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            Err(ServerError::DeadlineExceeded)
        } else {
            let parts = relock(&self.construction)
                .take()
                .expect("construction parts present at finalization");
            let mut results = parts.results;
            results.append(&mut relock(&self.results));
            // Per-query solver/sched counters are scheduling-dependent (the
            // pool's worker-local solvers outlive queries), so the report
            // carries the construction-phase solver counters only — canonical
            // reports exclude counters entirely, exactly as for the
            // multi-threaded engine.
            let report = finalize_report(
                results,
                parts.injected,
                parts.solver_stats,
                SchedStats::default(),
                self.started,
            );
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            let wall = report.wall_time;
            Ok(ServedReport {
                report,
                epoch: self.epoch,
                wall,
            })
        };
        let _ = reply.send(outcome);
        shared.admission.release_slot();
    }
}

/// State shared by the handles, the dispatcher and the pool workers.
struct Shared {
    admission: Admission,
    pool: StealScheduler<Job>,
    epoch: Mutex<EpochState>,
    stats: StatsCell,
    exec: ExecConfig,
}

/// The serving subsystem: a dispatcher thread, a persistent work-stealing
/// pool and an epoch-versioned topology. Create one with
/// [`SymNetServer::start`], talk to it through [`ServeHandle`]s, and stop it
/// with [`SymNetServer::shutdown`] (dropping it shuts down too). Shutdown is
/// graceful: everything already admitted is served first.
pub struct SymNetServer {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl SymNetServer {
    /// Starts a server over `network` at epoch 0.
    pub fn start(network: Network, config: ServerConfig) -> SymNetServer {
        let workers = config.workers.max(1);
        // Warm-start: a restarted server pointed at the same cache directory
        // replays the previous process's verdicts from disk. Failure to open
        // the store (locked by a live peer, I/O error) degrades to a cold
        // cache — serving never depends on the disk layer.
        let _ = config.exec.activate_cache();
        let shared = Arc::new(Shared {
            admission: Admission::new(config.capacity),
            pool: StealScheduler::persistent(workers),
            epoch: Mutex::new(EpochState {
                epoch: 0,
                network: Arc::new(network),
            }),
            stats: StatsCell::default(),
            exec: config.exec,
        });
        let worker_handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("symnet-serve-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("symnet-serve-dispatcher".to_string())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawn dispatcher")
        };
        SymNetServer {
            shared,
            dispatcher: Some(dispatcher),
            workers: worker_handles,
        }
    }

    /// A cloneable front-end handle for submitting requests.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting new requests, serves everything already admitted,
    /// stops the pool and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.shared.admission.close();
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for SymNetServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// A cloneable front-end to a running [`SymNetServer`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
}

impl ServeHandle {
    /// Enqueues a verification query: inject `packet` at `element`'s input
    /// `input_port` on the *current* epoch (pinned at dispatch). Fails fast
    /// with [`ServerError::Overloaded`] when the admission queue is full.
    pub fn verify(
        &self,
        element: ElementId,
        input_port: usize,
        packet: Instruction,
    ) -> Result<QueryTicket, ServerError> {
        self.submit_verify(element, input_port, packet, None)
    }

    /// Like [`ServeHandle::verify`], with a deadline measured from admission:
    /// a query still running when it expires is cooperatively cancelled (its
    /// ticket resolves to [`ServerError::DeadlineExceeded`]) and the pool
    /// stays reusable.
    pub fn verify_with_deadline(
        &self,
        element: ElementId,
        input_port: usize,
        packet: Instruction,
        deadline: Duration,
    ) -> Result<QueryTicket, ServerError> {
        self.submit_verify(element, input_port, packet, Some(Instant::now() + deadline))
    }

    fn submit_verify(
        &self,
        element: ElementId,
        input_port: usize,
        packet: Instruction,
        deadline: Option<Instant>,
    ) -> Result<QueryTicket, ServerError> {
        let (reply, ticket) = sync_channel(1);
        let request = Request::Verify {
            element,
            input_port,
            packet,
            deadline,
            queued_at: Instant::now(),
            reply,
        };
        self.admit(request)?;
        Ok(QueryTicket { ticket })
    }

    /// Enqueues a rule delta: replace `element`'s program (same port counts)
    /// and publish a new epoch. In-flight queries finish on their pinned
    /// pre-delta snapshot; queries admitted after the ticket resolves see the
    /// post-delta epoch. Drive this from
    /// [`RuleTables`](../../symnet_models/delta/struct.RuleTables.html)-style
    /// table state to keep the program the compiled truth of the tables.
    pub fn apply_delta(
        &self,
        element: ElementId,
        program: ElementProgram,
    ) -> Result<DeltaTicket, ServerError> {
        let (reply, ticket) = sync_channel(1);
        self.admit(Request::ApplyDelta {
            element,
            program,
            reply,
        })?;
        Ok(DeltaTicket { ticket })
    }

    /// Enqueues a snapshot request: the current epoch number plus a shared
    /// handle to its immutable topology.
    pub fn snapshot(&self) -> Result<SnapshotTicket, ServerError> {
        let (reply, ticket) = sync_channel(1);
        self.admit(Request::Snapshot { reply })?;
        Ok(SnapshotTicket { ticket })
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot()
    }

    fn admit(&self, request: Request) -> Result<(), ServerError> {
        match self.shared.admission.try_submit(request) {
            Ok(()) => {
                self.shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                if e == ServerError::Overloaded {
                    self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }
}

/// The pending reply to a [`ServeHandle::verify`] submission.
#[derive(Debug)]
pub struct QueryTicket {
    ticket: Receiver<Result<ServedReport, ServerError>>,
}

impl QueryTicket {
    /// Blocks until the query finalizes.
    pub fn wait(self) -> Result<ServedReport, ServerError> {
        self.ticket.recv().unwrap_or(Err(ServerError::ShuttingDown))
    }
}

/// The pending reply to a [`ServeHandle::apply_delta`] submission; resolves
/// to the newly published epoch number.
pub struct DeltaTicket {
    ticket: Receiver<Result<u64, ServerError>>,
}

impl DeltaTicket {
    /// Blocks until the delta is published.
    pub fn wait(self) -> Result<u64, ServerError> {
        self.ticket.recv().unwrap_or(Err(ServerError::ShuttingDown))
    }
}

/// The pending reply to a [`ServeHandle::snapshot`] submission.
#[derive(Debug)]
pub struct SnapshotTicket {
    ticket: Receiver<Result<(u64, Arc<Network>), ServerError>>,
}

impl SnapshotTicket {
    /// Blocks until the snapshot is taken.
    pub fn wait(self) -> Result<(u64, Arc<Network>), ServerError> {
        self.ticket.recv().unwrap_or(Err(ServerError::ShuttingDown))
    }
}

/// The dispatcher: drains the admission queue in order (the serialization
/// point that makes "pinned before the delta" well defined), pins and
/// constructs queries, publishes epochs, serves snapshots. After the queue
/// closes it waits for in-flight queries to finalize, then stops the pool.
fn dispatcher_loop(shared: &Arc<Shared>) {
    while let Some(request) = shared.admission.pop() {
        match request {
            Request::Verify {
                element,
                input_port,
                packet,
                deadline,
                queued_at,
                reply,
            } => dispatch_verify(
                shared, element, input_port, packet, deadline, queued_at, reply,
            ),
            Request::ApplyDelta {
                element,
                program,
                reply,
            } => {
                let outcome = {
                    let mut state = relock(&shared.epoch);
                    let current = Arc::clone(&state.network);
                    match catch_unwind(AssertUnwindSafe(move || {
                        let mut network = (*current).clone();
                        network.replace_element(element, program);
                        network
                    })) {
                        Ok(network) => {
                            state.network = Arc::new(network);
                            state.epoch += 1;
                            shared
                                .stats
                                .epochs_published
                                .fetch_add(1, Ordering::Relaxed);
                            Ok(state.epoch)
                        }
                        Err(payload) => Err(ServerError::Engine(EngineError::WorkerPanicked {
                            message: panic_message(payload.as_ref()),
                        })),
                    }
                };
                let _ = reply.send(outcome);
                shared.admission.release_slot();
            }
            Request::Snapshot { reply } => {
                let state = relock(&shared.epoch);
                let snapshot = (state.epoch, Arc::clone(&state.network));
                drop(state);
                shared
                    .stats
                    .snapshots_served
                    .fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Ok(snapshot));
                shared.admission.release_slot();
            }
        }
    }
    // Queue closed and drained: wait for every in-flight query to reply
    // (workers are still exploring), then stop the pool so workers join.
    while shared.admission.in_flight() != 0 {
        std::thread::sleep(Duration::from_micros(200));
    }
    shared.pool.stop();
}

/// Pins a query to the current epoch, runs packet construction on the
/// dispatcher thread and injects the root jobs into the pool. The dispatcher
/// holds one guard unit of `outstanding` across injection so the query cannot
/// finalize before all roots are counted.
fn dispatch_verify(
    shared: &Arc<Shared>,
    element: ElementId,
    input_port: usize,
    packet: Instruction,
    deadline: Option<Instant>,
    queued_at: Instant,
    reply: SyncSender<Result<ServedReport, ServerError>>,
) {
    let (epoch, network) = {
        let state = relock(&shared.epoch);
        (state.epoch, Arc::clone(&state.network))
    };
    let task = Arc::new(QueryTask {
        engine: SymNet::shared(network, shared.exec.clone()),
        epoch,
        budget: PathBudget::new(shared.exec.max_paths),
        outstanding: AtomicUsize::new(1),
        cancelled: AtomicBool::new(false),
        deadline,
        failure: Mutex::new(None),
        results: Mutex::new(Vec::new()),
        construction: Mutex::new(None),
        reply: Mutex::new(Some(reply)),
        started: queued_at,
    });
    match task
        .engine
        .construct_roots(element, input_port, &packet, &task.budget)
    {
        Ok(construction) => {
            *relock(&task.construction) = Some(ConstructionParts {
                results: construction.results,
                injected: construction.injected,
                solver_stats: construction.solver_stats,
            });
            let jobs: Vec<Job> = construction
                .roots
                .into_iter()
                .map(|path| Job {
                    query: Arc::clone(&task),
                    path,
                })
                .collect();
            if !jobs.is_empty() {
                task.outstanding.fetch_add(jobs.len(), Ordering::SeqCst);
                shared.pool.inject(jobs);
            }
        }
        Err(EngineError::WorkerPanicked { message }) => task.fail(message),
    }
    // Drop the dispatcher's guard; if construction produced no roots (or
    // failed) this finalizes immediately.
    task.retire(shared);
}

/// One pool worker: pops query-tagged jobs (own deque, injector, steal-half),
/// interprets them with a long-lived thread-local context and routes
/// emissions to the owning query's collector. A panicking step fails its
/// query only — the worker and the pool keep serving other queries.
fn worker_loop(shared: &Arc<Shared>, me: usize) {
    let mut ctx = Ctx::new(shared.exec.solver);
    let mut stats = SchedStats::default();
    let mut results: Vec<RawResult> = Vec::new();
    let mut children: Vec<PendingPath> = Vec::new();
    while let Some(Job { query, path }) = shared.pool.pop(me, &mut stats) {
        if query.should_skip() {
            // Cancelled / past-deadline / budget-full queries drain their
            // remaining jobs without processing them: the checkpoint-granular
            // cooperative cancellation point.
            shared.pool.complete(me, Vec::new(), &mut stats);
            query.retire(shared);
            continue;
        }
        let step = catch_unwind(AssertUnwindSafe(|| {
            query
                .engine
                .process_pending(&mut ctx, &query.budget, path, &mut results, &mut children)
        }));
        match step {
            Ok(()) => {
                if !results.is_empty() {
                    relock(&query.results).append(&mut results);
                }
                let jobs: Vec<Job> = children
                    .drain(..)
                    .map(|path| Job {
                        query: Arc::clone(&query),
                        path,
                    })
                    .collect();
                if !jobs.is_empty() {
                    // Count the children on the query *before* publishing them
                    // so its outstanding count can never dip to zero early.
                    query.outstanding.fetch_add(jobs.len(), Ordering::SeqCst);
                }
                shared.pool.complete(me, jobs, &mut stats);
            }
            Err(payload) => {
                results.clear();
                children.clear();
                query.fail(panic_message(payload.as_ref()));
                shared.pool.complete(me, Vec::new(), &mut stats);
            }
        }
        query.retire(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_sefl::fields::tcp_dst;
    use symnet_sefl::packet::symbolic_tcp_packet;
    use symnet_sefl::Condition;

    /// A 1-in-1-out element that only lets HTTP through.
    fn http_filter(name: &str) -> ElementProgram {
        ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
            Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
            Instruction::forward(0),
        ]))
    }

    fn one_filter_network() -> (Network, ElementId) {
        let mut net = Network::new();
        let fw = net.add_element(http_filter("fw"));
        (net, fw)
    }

    #[test]
    fn serves_a_simple_query() {
        let (net, fw) = one_filter_network();
        let server = SymNetServer::start(net, ServerConfig::default().with_workers(2));
        let handle = server.handle();
        let served = handle
            .verify(fw, 0, symbolic_tcp_packet())
            .expect("admitted")
            .wait()
            .expect("completes");
        assert_eq!(served.epoch, 0);
        assert_eq!(served.report.delivered().count(), 1);
        let stats = handle.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        server.shutdown();
    }

    #[test]
    fn delta_publishes_a_new_epoch_and_snapshot_sees_it() {
        let (net, fw) = one_filter_network();
        let server = SymNetServer::start(net, ServerConfig::default().with_workers(1));
        let handle = server.handle();
        let (epoch0, _) = handle.snapshot().expect("admitted").wait().expect("served");
        assert_eq!(epoch0, 0);
        let epoch1 = handle
            .apply_delta(fw, http_filter("fw"))
            .expect("admitted")
            .wait()
            .expect("published");
        assert_eq!(epoch1, 1);
        let (epoch, _) = handle.snapshot().expect("admitted").wait().expect("served");
        assert_eq!(epoch, 1);
        assert_eq!(handle.stats().epochs_published, 1);
        server.shutdown();
    }

    #[test]
    fn zero_deadline_query_is_cancelled_and_server_stays_usable() {
        let (net, fw) = one_filter_network();
        let server = SymNetServer::start(net, ServerConfig::default().with_workers(2));
        let handle = server.handle();
        let err = handle
            .verify_with_deadline(fw, 0, symbolic_tcp_packet(), Duration::ZERO)
            .expect("admitted")
            .wait()
            .expect_err("deadline already passed");
        assert_eq!(err, ServerError::DeadlineExceeded);
        assert_eq!(handle.stats().cancelled, 1);
        // The pool survives and keeps serving.
        let served = handle
            .verify(fw, 0, symbolic_tcp_packet())
            .expect("admitted")
            .wait()
            .expect("completes");
        assert_eq!(served.report.delivered().count(), 1);
        server.shutdown();
    }

    #[test]
    fn panicking_model_fails_its_query_but_not_the_pool() {
        let mut net = Network::new();
        let bomb = net.add_element(
            ElementProgram::new("bomb", 1, 1)
                .with_any_input_code(Instruction::abort("defective model")),
        );
        let fw = net.add_element(http_filter("fw"));
        let server = SymNetServer::start(net, ServerConfig::default().with_workers(2));
        let handle = server.handle();
        let err = handle
            .verify(bomb, 0, symbolic_tcp_packet())
            .expect("admitted")
            .wait()
            .expect_err("bomb panics");
        match err {
            ServerError::Engine(EngineError::WorkerPanicked { message }) => {
                assert!(message.contains("defective model"), "message: {message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert_eq!(handle.stats().failed, 1);
        // The pool keeps serving other queries after the contained failure.
        let served = handle
            .verify(fw, 0, symbolic_tcp_packet())
            .expect("admitted")
            .wait()
            .expect("completes");
        assert_eq!(served.report.delivered().count(), 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let (net, fw) = one_filter_network();
        let server = SymNetServer::start(net, ServerConfig::default());
        let handle = server.handle();
        server.shutdown();
        let err = handle
            .verify(fw, 0, symbolic_tcp_packet())
            .expect_err("queue closed");
        assert_eq!(err, ServerError::ShuttingDown);
    }
}
