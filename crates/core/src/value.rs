//! Values stored in packet headers and metadata.
//!
//! A value is either concrete or symbolic-plus-offset. Keeping the offset in
//! the value (rather than allocating a fresh symbol for `x + 20`) is what lets
//! the engine express SEFL's arithmetic (`Assign(IpLength, IpLength + 20)`)
//! without growing the constraint store, mirroring the paper's observation
//! that SEFL only needs referencing, addition, subtraction and negation.

use serde::{Deserialize, Serialize};
use std::fmt;
use symnet_solver::{SymVar, Term};

/// A concrete or symbolic value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A concrete value.
    Concrete(u64),
    /// A symbolic variable plus a signed offset.
    Sym {
        /// The symbolic variable.
        var: SymVar,
        /// Offset added to the variable.
        offset: i64,
    },
}

impl Value {
    /// A fresh symbolic value with no offset.
    pub fn symbolic(var: SymVar) -> Self {
        Value::Sym { var, offset: 0 }
    }

    /// A concrete value.
    pub fn concrete(value: u64) -> Self {
        Value::Concrete(value)
    }

    /// Returns the concrete value, if this value is concrete.
    pub fn as_concrete(&self) -> Option<u64> {
        match self {
            Value::Concrete(v) => Some(*v),
            Value::Sym { .. } => None,
        }
    }

    /// Returns the underlying symbolic variable, if any.
    pub fn as_symbolic(&self) -> Option<SymVar> {
        match self {
            Value::Concrete(_) => None,
            Value::Sym { var, .. } => Some(*var),
        }
    }

    /// True if the value is symbolic.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Value::Sym { .. })
    }

    /// Adds a signed offset to the value. Concrete values wrap modulo
    /// 2^`width` like real header fields do; symbolic values carry the offset.
    pub fn offset_by(&self, delta: i64, width: u16) -> Value {
        match self {
            Value::Concrete(v) => {
                let mask = width_mask(width);
                Value::Concrete((v.wrapping_add(delta as u64)) & mask)
            }
            Value::Sym { var, offset } => Value::Sym {
                var: *var,
                offset: offset + delta,
            },
        }
    }

    /// Converts the value into a solver term.
    pub fn to_term(&self) -> Term {
        match self {
            Value::Concrete(v) => Term::Const(*v as i128),
            Value::Sym { var, offset } => Term::Var {
                var: *var,
                offset: *offset as i128,
            },
        }
    }

    /// Evaluates the value under a concrete assignment of symbolic variables.
    pub fn eval(&self, lookup: impl Fn(SymVar) -> Option<u64>) -> Option<u64> {
        match self {
            Value::Concrete(v) => Some(*v),
            Value::Sym { var, offset } => {
                lookup(*var).map(|v| (v as i128 + *offset as i128).max(0) as u64)
            }
        }
    }

    /// True if two values are *syntactically* identical (same constant, or
    /// same symbol with the same offset). This is the cheap invariance check:
    /// an untouched field keeps the very same symbolic value across hops.
    pub fn same_value(&self, other: &Value) -> bool {
        self == other
    }
}

/// Bit mask with the lowest `width` bits set.
pub fn width_mask(width: u16) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Concrete(v) => write!(f, "{v}"),
            Value::Sym { var, offset } if *offset == 0 => write!(f, "{var}"),
            Value::Sym { var, offset } if *offset > 0 => write!(f, "{var}+{offset}"),
            Value::Sym { var, offset } => write!(f, "{var}{offset}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_offset_wraps_at_width() {
        let ttl = Value::concrete(0);
        assert_eq!(ttl.offset_by(-1, 8), Value::Concrete(255));
        let v = Value::concrete(250);
        assert_eq!(v.offset_by(10, 8), Value::Concrete(4));
        assert_eq!(v.offset_by(10, 16), Value::Concrete(260));
    }

    #[test]
    fn symbolic_offset_accumulates() {
        let var = SymVar::new(1, 16);
        let v = Value::symbolic(var).offset_by(20, 16).offset_by(-5, 16);
        assert_eq!(v, Value::Sym { var, offset: 15 });
        assert!(v.is_symbolic());
        assert_eq!(v.as_symbolic(), Some(var));
        assert_eq!(v.as_concrete(), None);
    }

    #[test]
    fn to_term_round_trips() {
        let var = SymVar::new(2, 32);
        assert_eq!(Value::concrete(7).to_term(), Term::Const(7));
        assert_eq!(
            Value::Sym { var, offset: -3 }.to_term(),
            Term::Var { var, offset: -3 }
        );
    }

    #[test]
    fn eval_under_assignment() {
        let var = SymVar::new(3, 16);
        let v = Value::Sym { var, offset: 5 };
        assert_eq!(v.eval(|_| Some(10)), Some(15));
        assert_eq!(v.eval(|_| None), None);
        assert_eq!(Value::concrete(9).eval(|_| None), Some(9));
    }

    #[test]
    fn width_mask_limits() {
        assert_eq!(width_mask(8), 0xff);
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(64), u64::MAX);
    }

    #[test]
    fn same_value_is_syntactic() {
        let a = SymVar::new(1, 8);
        let b = SymVar::new(2, 8);
        assert!(Value::symbolic(a).same_value(&Value::symbolic(a)));
        assert!(!Value::symbolic(a).same_value(&Value::symbolic(b)));
        assert!(!Value::symbolic(a).same_value(&Value::symbolic(a).offset_by(1, 8)));
    }
}
