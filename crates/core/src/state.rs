//! Per-path execution state.
//!
//! "The state includes header variables and map entries (called metadata)
//! together with their values and constraints" (§4). The two SymNet-specific
//! enhancements from §5 are implemented here:
//!
//! * header addresses and metadata keys map to **value stacks**, so
//!   `Allocate`/`Deallocate` can mask a value and restore it later (this is
//!   what makes tunnel encapsulation/decapsulation natural to model), and
//! * the state keeps the **history** needed for the §6 analyses: the trace of
//!   visited ports/instructions and the accumulated path condition.

use crate::error::ExecError;
use crate::pmap::PMap;
use crate::symbols::VarAllocator;
use crate::value::{width_mask, Value};
use serde::{Content, Deserialize, Deserializer, Error, Serialize};
use std::sync::Arc;
use symnet_sefl::cond::{Condition, RelOp};
use symnet_sefl::expr::Expr;
use symnet_sefl::field::{FieldRef, HeaderAddr, Visibility};
use symnet_solver::{CmpOp, Formula, PathCond, Term};

/// Default width (in bits) of metadata entries allocated without an explicit
/// width.
pub const DEFAULT_META_WIDTH: u16 = 64;

/// One live allocation of a header field or metadata entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Current value.
    pub value: Value,
    /// Width of the field in bits.
    pub width: u16,
}

/// An entry of the per-path execution trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEntry {
    /// The path entered an element port (`element name`, `port description`).
    Port(String),
    /// The path executed a noteworthy instruction (constrain, assign, fail...).
    Instruction(String),
    /// A free-form message (e.g. the argument of `Fail`).
    Message(String),
}

/// The per-path execution trace, as an `Arc` cons-list: appending is O(1) and
/// forking a path shares the parent's entire trace (one pointer clone) instead
/// of deep-copying a vector whose length grows with every hop. Entries
/// serialize, compare and print oldest-first, exactly like the `Vec` this
/// replaced.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    head: Option<Arc<TraceNode>>,
    len: usize,
}

#[derive(Debug)]
struct TraceNode {
    entry: TraceEntry,
    prev: Option<Arc<TraceNode>>,
}

impl Trace {
    /// Appends an entry (O(1); the current trace becomes the shared tail).
    pub fn push(&mut self, entry: TraceEntry) {
        self.head = Some(Arc::new(TraceNode {
            entry,
            prev: self.head.take(),
        }));
        self.len += 1;
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entry was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates newest-first (the cheap direction for a cons-list).
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &TraceEntry> {
        std::iter::successors(self.head.as_deref(), |n| n.prev.as_deref()).map(|n| &n.entry)
    }

    /// The entries oldest-first (execution order), as borrowed references.
    pub fn entries(&self) -> Vec<&TraceEntry> {
        let mut out: Vec<&TraceEntry> = self.iter_newest_first().collect();
        out.reverse();
        out
    }
}

impl Drop for Trace {
    /// Unlinks the chain iteratively, exactly like [`PathCond`]'s `Drop`: the
    /// naive recursive drop of a long cons-list (one `Drop` frame per node)
    /// would overflow the stack on the tens-of-thousands-entry traces that
    /// basic switch/router models accrete (one entry per table-entry `If`
    /// evaluated, times up to `max_hops` elements).
    fn drop(&mut self) {
        let mut cur = self.head.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                // Sole owner: steal the tail link and keep unlinking.
                Ok(mut owned) => cur = owned.prev.take(),
                // Still shared: the other owners keep the rest alive.
                Err(_) => break,
            }
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        // Forked siblings share their common tail: stop at the first shared
        // node instead of walking both lists to the end.
        let mut a = self.head.as_ref();
        let mut b = other.head.as_ref();
        while let (Some(x), Some(y)) = (a, b) {
            if Arc::ptr_eq(x, y) {
                return true;
            }
            if x.entry != y.entry {
                return false;
            }
            a = x.prev.as_ref();
            b = y.prev.as_ref();
        }
        true
    }
}

impl Eq for Trace {}

// Serialized as the oldest-first sequence the `Vec<TraceEntry>` representation
// produced, so reports are unchanged.
impl Serialize for Trace {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self
            .iter_newest_first()
            .map(Serialize::to_content)
            .collect();
        items.reverse();
        Content::Seq(items)
    }
}

impl<'de> Deserialize<'de> for Trace {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => {
                let mut trace = Trace::default();
                for item in items {
                    trace.push(serde::from_content(item).map_err(D::Error::custom)?);
                }
                Ok(trace)
            }
            other => Err(D::Error::custom(format!(
                "expected sequence for trace, found {other:?}"
            ))),
        }
    }
}

/// The execution state of one path (one packet).
///
/// Every container in here is persistent (structurally shared): the header and
/// metadata maps are path-copying [`PMap`]s, the tag map likewise, the path
/// condition a [`PathCond`] cons-list and the trace a [`Trace`] cons-list.
/// Cloning a state — which is exactly what forking a path at `If`/`Fork` does
/// — therefore touches O(1) words, and a child's first write to a map copies
/// only the O(log n) nodes on its search path.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecState {
    /// Packet header: bit address → stack of allocations (top is live).
    headers: PMap<i64, Vec<Slot>>,
    /// Metadata map: key → stack of allocations (top is live).
    meta: PMap<String, Vec<Slot>>,
    /// Tags: name → absolute bit address.
    tags: PMap<String, i64>,
    /// Path condition, as a persistent (structurally shared) conjunction:
    /// forked paths share their common prefix — and the solver analysis
    /// cached on it — instead of deep-copying a constraint vector.
    constraints: PathCond,
    /// Trace of ports visited and instructions executed.
    trace: Trace,
}

impl ExecState {
    /// Creates the empty initial state (no headers, metadata or tags).
    pub fn new() -> Self {
        ExecState::default()
    }

    // ------------------------------------------------------------------
    // Tags
    // ------------------------------------------------------------------

    /// Returns the absolute address of a tag.
    pub fn tag(&self, name: &str) -> Option<i64> {
        self.tags.get(name).copied()
    }

    /// Creates (or moves) a tag at the given absolute address.
    pub fn create_tag(&mut self, name: impl Into<String>, address: i64) {
        self.tags.insert(name.into(), address);
    }

    /// Destroys a tag. Destroying a missing tag is an error (it usually means
    /// a decapsulation model ran on a packet that was never encapsulated).
    pub fn destroy_tag(&mut self, name: &str) -> Result<(), ExecError> {
        self.tags
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ExecError::UnknownTag(name.to_string()))
    }

    /// All currently defined tags.
    pub fn tags(&self) -> impl Iterator<Item = (&str, i64)> {
        self.tags.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Resolves a header address (absolute or tag-relative) to an absolute bit
    /// address.
    pub fn resolve_addr(&self, addr: &HeaderAddr) -> Result<i64, ExecError> {
        match addr {
            HeaderAddr::Absolute(a) => Ok(*a),
            HeaderAddr::TagOffset { tag, offset } => self
                .tag(tag)
                .map(|base| base + offset)
                .ok_or_else(|| ExecError::UnknownTag(tag.clone())),
        }
    }

    // ------------------------------------------------------------------
    // Header fields
    // ------------------------------------------------------------------

    /// Allocates a header field of `width` bits at the given absolute address,
    /// pushing a new value stack entry. Allocation at the same address stacks
    /// (masking the previous value); overlapping a *different* live allocation
    /// is a memory-safety error.
    pub fn allocate_header(&mut self, address: i64, width: u16) -> Result<(), ExecError> {
        for (&other, stack) in &self.headers {
            if other == address || stack.iter().last().is_none() {
                continue;
            }
            if stack.last().is_some() {
                let other_width = stack.last().unwrap().width as i64;
                let overlaps = address < other + other_width && other < address + width as i64;
                if overlaps {
                    return Err(ExecError::Overlap {
                        address,
                        width,
                        existing: other,
                    });
                }
            }
        }
        let slot = Slot {
            value: Value::Concrete(0),
            width,
        };
        if let Some(stack) = self.headers.get_mut(&address) {
            stack.push(slot);
        } else {
            self.headers.insert(address, vec![slot]);
        }
        Ok(())
    }

    /// Pops the topmost allocation at `address`, optionally checking its width.
    pub fn deallocate_header(
        &mut self,
        address: i64,
        expected_width: Option<u16>,
    ) -> Result<(), ExecError> {
        let stack = self
            .headers
            .get_mut(&address)
            .filter(|s| !s.is_empty())
            .ok_or(ExecError::Unallocated { address })?;
        let top = stack.last().expect("non-empty checked above");
        if let Some(expected) = expected_width {
            if top.width != expected {
                return Err(ExecError::WidthMismatch {
                    expected,
                    actual: top.width,
                });
            }
        }
        stack.pop();
        let emptied = stack.is_empty();
        if emptied {
            self.headers.remove(&address);
        }
        Ok(())
    }

    /// Reads the live allocation at `address`. Accesses must be exactly
    /// aligned with an allocation (the paper's header memory safety).
    pub fn read_header(&self, address: i64) -> Result<&Slot, ExecError> {
        self.headers
            .get(&address)
            .and_then(|s| s.last())
            .ok_or(ExecError::Unallocated { address })
    }

    /// Overwrites the value of the live allocation at `address`.
    pub fn write_header(&mut self, address: i64, value: Value) -> Result<(), ExecError> {
        let slot = self
            .headers
            .get_mut(&address)
            .and_then(|s| s.last_mut())
            .ok_or(ExecError::Unallocated { address })?;
        slot.value = match value {
            Value::Concrete(v) => Value::Concrete(v & width_mask(slot.width)),
            sym => sym,
        };
        Ok(())
    }

    /// True if a live header allocation exists at `address`.
    pub fn header_allocated(&self, address: i64) -> bool {
        self.headers.get(&address).is_some_and(|s| !s.is_empty())
    }

    /// Iterates over every live header allocation as `(address, slot)`.
    pub fn headers(&self) -> impl Iterator<Item = (i64, &Slot)> {
        self.headers
            .iter()
            .filter_map(|(addr, stack)| stack.last().map(|s| (*addr, s)))
    }

    /// Depth of the value stack at a header address (0 if never allocated).
    pub fn header_stack_depth(&self, address: i64) -> usize {
        self.headers.get(&address).map_or(0, Vec::len)
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// Allocates a metadata entry, pushing onto its value stack.
    pub fn allocate_meta(&mut self, key: impl Into<String>, width: u16) {
        let key = key.into();
        let slot = Slot {
            value: Value::Concrete(0),
            width,
        };
        if let Some(stack) = self.meta.get_mut(&key) {
            stack.push(slot);
        } else {
            self.meta.insert(key, vec![slot]);
        }
    }

    /// Pops the topmost allocation of a metadata entry.
    pub fn deallocate_meta(
        &mut self,
        key: &str,
        expected_width: Option<u16>,
    ) -> Result<(), ExecError> {
        let stack = self
            .meta
            .get_mut(key)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| ExecError::UnknownMetadata(key.to_string()))?;
        let top = stack.last().expect("non-empty checked above");
        if let Some(expected) = expected_width {
            if top.width != expected {
                return Err(ExecError::WidthMismatch {
                    expected,
                    actual: top.width,
                });
            }
        }
        stack.pop();
        let emptied = stack.is_empty();
        if emptied {
            self.meta.remove(key);
        }
        Ok(())
    }

    /// Reads a metadata entry.
    pub fn read_meta(&self, key: &str) -> Result<&Slot, ExecError> {
        self.meta
            .get(key)
            .and_then(|s| s.last())
            .ok_or_else(|| ExecError::UnknownMetadata(key.to_string()))
    }

    /// Writes a metadata entry. Writing a key that was never allocated
    /// allocates it implicitly with the default width, which matches how the
    /// paper's models freely `Assign` to metadata such as `"OPT30"`.
    pub fn write_meta(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(top) = self.meta.get_mut(&key).and_then(|s| s.last_mut()) {
            top.value = match value {
                Value::Concrete(v) => Value::Concrete(v & width_mask(top.width)),
                sym => sym,
            };
            return;
        }
        self.meta.insert(
            key,
            vec![Slot {
                value,
                width: DEFAULT_META_WIDTH,
            }],
        );
    }

    /// True if a live metadata entry exists for `key`.
    pub fn meta_allocated(&self, key: &str) -> bool {
        self.meta.get(key).is_some_and(|s| !s.is_empty())
    }

    /// Iterates over every live metadata entry as `(key, slot)`.
    pub fn metadata(&self) -> impl Iterator<Item = (&str, &Slot)> {
        self.meta
            .iter()
            .filter_map(|(k, stack)| stack.last().map(|s| (k.as_str(), s)))
    }

    /// Snapshot of the metadata keys matching a glob pattern (`*` matches any
    /// substring), used to unfold `For` loops.
    pub fn meta_keys_matching(&self, pattern: &str) -> Vec<String> {
        self.meta
            .iter()
            .filter(|(_, stack)| !stack.is_empty())
            .filter(|(key, _)| glob_match(pattern, key))
            .map(|(key, _)| key.clone())
            .collect()
    }

    // ------------------------------------------------------------------
    // Whole-state value transforms (differential-testing support)
    // ------------------------------------------------------------------

    /// Rewrites **every** stored value — all stack levels of all header
    /// allocations and metadata entries, not just the live tops. This is the
    /// concretization hook of the differential fuzzer: mapping each
    /// [`Value::Sym`] to the concrete value a solver model assigns turns a
    /// symbolic injected state into the concrete packet a replay interpreter
    /// can execute, *including* the values masked by later encapsulations
    /// (which a top-of-stack walk would miss and a decapsulation would then
    /// re-expose).
    pub fn map_values(&mut self, mut f: impl FnMut(&Value) -> Value) {
        let addresses: Vec<i64> = self.headers.iter().map(|(a, _)| *a).collect();
        for address in addresses {
            if let Some(stack) = self.headers.get_mut(&address) {
                for slot in stack.iter_mut() {
                    slot.value = f(&slot.value);
                }
            }
        }
        let keys: Vec<String> = self.meta.iter().map(|(k, _)| k.clone()).collect();
        for key in keys {
            if let Some(stack) = self.meta.get_mut(&key) {
                for slot in stack.iter_mut() {
                    slot.value = f(&slot.value);
                }
            }
        }
    }

    /// The largest symbolic-variable id stored anywhere in this state (again
    /// over all stack levels), or `None` if the state is fully concrete.
    /// Replay interpreters use `max_symbol_id() + 1` on the injected state as
    /// the first id the engine's per-path allocator would hand out, which is
    /// what keeps a replayed `Expr::Symbolic` aligned with the variable the
    /// symbolic execution allocated at the same program point.
    pub fn max_symbol_id(&self) -> Option<u64> {
        let header_ids = self
            .headers
            .iter()
            .flat_map(|(_, stack)| stack.iter())
            .filter_map(|slot| match slot.value {
                Value::Sym { var, .. } => Some(var.id.0),
                Value::Concrete(_) => None,
            });
        let meta_ids = self
            .meta
            .iter()
            .flat_map(|(_, stack)| stack.iter())
            .filter_map(|slot| match slot.value {
                Value::Sym { var, .. } => Some(var.id.0),
                Value::Concrete(_) => None,
            });
        header_ids.chain(meta_ids).max()
    }

    // ------------------------------------------------------------------
    // Field resolution (headers and metadata uniformly)
    // ------------------------------------------------------------------

    /// Reads the value and width of a field reference. `local_prefix`
    /// namespaces local metadata (see [`ExecState::meta_key_for`]).
    pub fn read_field(&self, field: &FieldRef, local_prefix: &str) -> Result<Slot, ExecError> {
        match field {
            FieldRef::Header(addr) => {
                let address = self.resolve_addr(addr)?;
                self.read_header(address).cloned()
            }
            FieldRef::Meta(key) => {
                let key = self.meta_key_for(key, local_prefix);
                self.read_meta(&key).cloned()
            }
        }
    }

    /// Writes a field reference.
    pub fn write_field(
        &mut self,
        field: &FieldRef,
        value: Value,
        local_prefix: &str,
    ) -> Result<(), ExecError> {
        match field {
            FieldRef::Header(addr) => {
                let address = self.resolve_addr(addr)?;
                self.write_header(address, value)
            }
            FieldRef::Meta(key) => {
                let key = self.meta_key_for(key, local_prefix);
                self.write_meta(key, value);
                Ok(())
            }
        }
    }

    /// The storage key used for a metadata reference: if a local entry
    /// (`{local_prefix}{key}`) exists it shadows the global one; this is how
    /// cascaded NAT instances each see their own `"orig-ip"` (§7).
    pub fn meta_key_for(&self, key: &str, local_prefix: &str) -> String {
        let local = format!("{local_prefix}{key}");
        if self.meta_allocated(&local) {
            local
        } else {
            key.to_string()
        }
    }

    /// The storage key a *new local allocation* should use.
    pub fn local_meta_key(key: &str, local_prefix: &str) -> String {
        format!("{local_prefix}{key}")
    }

    /// Allocates a field reference (header or metadata).
    pub fn allocate_field(
        &mut self,
        field: &FieldRef,
        width: Option<u16>,
        visibility: Visibility,
        local_prefix: &str,
    ) -> Result<(), ExecError> {
        match field {
            FieldRef::Header(addr) => {
                let address = self.resolve_addr(addr)?;
                let width = width.ok_or_else(|| {
                    ExecError::Unsupported("header allocation requires an explicit width".into())
                })?;
                self.allocate_header(address, width)
            }
            FieldRef::Meta(key) => {
                let key = match visibility {
                    Visibility::Global => key.clone(),
                    Visibility::Local => Self::local_meta_key(key, local_prefix),
                };
                self.allocate_meta(key, width.unwrap_or(DEFAULT_META_WIDTH));
                Ok(())
            }
        }
    }

    /// Deallocates a field reference.
    pub fn deallocate_field(
        &mut self,
        field: &FieldRef,
        width: Option<u16>,
        local_prefix: &str,
    ) -> Result<(), ExecError> {
        match field {
            FieldRef::Header(addr) => {
                let address = self.resolve_addr(addr)?;
                self.deallocate_header(address, width)
            }
            FieldRef::Meta(key) => {
                let key = self.meta_key_for(key, local_prefix);
                self.deallocate_meta(&key, width)
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions and conditions
    // ------------------------------------------------------------------

    /// Symbolically evaluates an expression to a value. `width_hint` is the
    /// width given to fresh symbolic values when the expression does not force
    /// one (typically the width of the assignment target).
    pub fn eval_expr(
        &self,
        expr: &Expr,
        symbols: &mut VarAllocator,
        width_hint: u16,
        local_prefix: &str,
    ) -> Result<Value, ExecError> {
        match expr {
            Expr::Const(c) => Ok(Value::Concrete(*c)),
            Expr::Ref(field) => Ok(self.read_field(field, local_prefix)?.value),
            Expr::Symbolic { width } => {
                Ok(Value::symbolic(symbols.fresh(width.unwrap_or(width_hint))))
            }
            Expr::Add(a, b) => {
                let va = self.eval_expr(a, symbols, width_hint, local_prefix)?;
                let vb = self.eval_expr(b, symbols, width_hint, local_prefix)?;
                combine(va, vb, width_hint, false)
            }
            Expr::Sub(a, b) => {
                let va = self.eval_expr(a, symbols, width_hint, local_prefix)?;
                let vb = self.eval_expr(b, symbols, width_hint, local_prefix)?;
                combine(va, vb, width_hint, true)
            }
            Expr::Neg(a) => {
                let va = self.eval_expr(a, symbols, width_hint, local_prefix)?;
                match va {
                    Value::Concrete(v) => {
                        Ok(Value::Concrete((v.wrapping_neg()) & width_mask(width_hint)))
                    }
                    Value::Sym { .. } => Err(ExecError::Unsupported(
                        "negation of a symbolic value".into(),
                    )),
                }
            }
        }
    }

    /// Lowers an SEFL condition into a solver formula, evaluating every field
    /// reference against the current state.
    pub fn lower_condition(
        &self,
        cond: &Condition,
        symbols: &mut VarAllocator,
        local_prefix: &str,
    ) -> Result<Formula, ExecError> {
        match cond {
            Condition::True => Ok(Formula::True),
            Condition::False => Ok(Formula::False),
            Condition::Cmp { op, lhs, rhs } => {
                let l = self.eval_expr(lhs, symbols, 64, local_prefix)?;
                let r = self.eval_expr(rhs, symbols, 64, local_prefix)?;
                Ok(Formula::cmp(to_cmp_op(*op), l.to_term(), r.to_term()))
            }
            Condition::Match {
                field,
                value,
                prefix_len,
                width,
            } => {
                let slot = self.read_field(field, local_prefix)?;
                match slot.value {
                    Value::Concrete(v) => {
                        let w = *width;
                        let shift = w.saturating_sub(*prefix_len);
                        let matches = (v >> shift) == ((*value & width_mask(w as u16)) >> shift);
                        Ok(if matches {
                            Formula::True
                        } else {
                            Formula::False
                        })
                    }
                    Value::Sym { var, offset } => {
                        if offset != 0 {
                            return Err(ExecError::Unsupported(
                                "prefix match on an offset symbolic value".into(),
                            ));
                        }
                        Ok(Formula::prefix_match(var, *value, *prefix_len))
                    }
                }
            }
            Condition::And(parts) => {
                let lowered = parts
                    .iter()
                    .map(|p| self.lower_condition(p, symbols, local_prefix))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Formula::and(lowered))
            }
            Condition::Or(parts) => {
                let lowered = parts
                    .iter()
                    .map(|p| self.lower_condition(p, symbols, local_prefix))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Formula::or(lowered))
            }
            Condition::Not(inner) => Ok(Formula::not(self.lower_condition(
                inner,
                symbols,
                local_prefix,
            )?)),
        }
    }

    // ------------------------------------------------------------------
    // Path condition and trace
    // ------------------------------------------------------------------

    /// Adds a formula to the path condition. O(1): the previous condition
    /// becomes the shared prefix of the new one (`Formula::True` is absorbed).
    pub fn add_constraint(&mut self, formula: Formula) {
        self.constraints = self.constraints.push(formula);
    }

    /// The path condition as a shared-prefix handle — the representation the
    /// incremental solver queries operate on ([`symnet_solver::Solver::check_path`]).
    pub fn path_cond(&self) -> &PathCond {
        &self.constraints
    }

    /// The path condition materialised as a single conjunction (insertion
    /// order). O(n) — meant for reports and one-off queries, not the solving
    /// hot path; prefer [`ExecState::path_cond`] there.
    pub fn path_condition(&self) -> Formula {
        self.constraints.to_formula()
    }

    /// Number of conjuncts in the path condition.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Total number of atoms across the path condition — the "number of
    /// constraints" metric reported in §8.1.
    pub fn constraint_atoms(&self) -> usize {
        self.constraints.atom_count()
    }

    /// Appends a trace entry (O(1); the shared tail is untouched).
    pub fn push_trace(&mut self, entry: TraceEntry) {
        self.trace.push(entry);
    }

    /// The execution trace, oldest-first. The entries live in `Arc`-shared
    /// cons-list cells, so this materialises a vector of references (O(n)) —
    /// meant for reports and assertions, not hot paths.
    pub fn trace(&self) -> Vec<&TraceEntry> {
        self.trace.entries()
    }

    /// The ports visited by this path, in order.
    pub fn ports_visited(&self) -> Vec<&str> {
        let mut ports: Vec<&str> = self
            .trace
            .iter_newest_first()
            .filter_map(|e| match e {
                TraceEntry::Port(p) => Some(p.as_str()),
                _ => None,
            })
            .collect();
        ports.reverse();
        ports
    }
}

/// Combines two values with `+` or `-`. At most one operand may be symbolic
/// (SEFL expressions never need the sum of two symbols).
fn combine(a: Value, b: Value, width: u16, subtract: bool) -> Result<Value, ExecError> {
    match (a, b) {
        (Value::Concrete(x), Value::Concrete(y)) => {
            let r = if subtract {
                x.wrapping_sub(y)
            } else {
                x.wrapping_add(y)
            };
            Ok(Value::Concrete(r & width_mask(width)))
        }
        (Value::Sym { var, offset }, Value::Concrete(c)) => {
            let delta = if subtract { -(c as i64) } else { c as i64 };
            Ok(Value::Sym {
                var,
                offset: offset + delta,
            })
        }
        (Value::Concrete(c), Value::Sym { var, offset }) if !subtract => Ok(Value::Sym {
            var,
            offset: offset + c as i64,
        }),
        _ => Err(ExecError::Unsupported(
            "arithmetic between two symbolic values".into(),
        )),
    }
}

/// Converts an SEFL relational operator to a solver comparison operator.
pub fn to_cmp_op(op: RelOp) -> CmpOp {
    match op {
        RelOp::Eq => CmpOp::Eq,
        RelOp::Ne => CmpOp::Ne,
        RelOp::Lt => CmpOp::Lt,
        RelOp::Le => CmpOp::Le,
        RelOp::Gt => CmpOp::Gt,
        RelOp::Ge => CmpOp::Ge,
    }
}

/// Glob matching with `*` wildcards (the subset of regular expressions the
/// paper's `For` loops actually use, e.g. `"OPT*"`).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some(b'*'), _) => inner(&p[1..], t) || (!t.is_empty() && inner(p, &t[1..])),
            (Some(pc), Some(tc)) if pc == tc => inner(&p[1..], &t[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

/// Builds the solver term for a value (convenience re-export used by the
/// verification helpers).
pub fn value_term(value: &Value) -> Term {
    value.to_term()
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_sefl::fields;

    fn state_with_l3() -> ExecState {
        let mut s = ExecState::new();
        s.create_tag("Start", 0);
        s.create_tag("L3", 0);
        s
    }

    #[test]
    fn tag_resolution() {
        let mut s = ExecState::new();
        s.create_tag("L2", 0);
        assert_eq!(
            s.resolve_addr(&HeaderAddr::tag_offset("L2", 112)).unwrap(),
            112
        );
        assert_eq!(s.resolve_addr(&HeaderAddr::absolute(-160)).unwrap(), -160);
        assert!(matches!(
            s.resolve_addr(&HeaderAddr::tag("L4")),
            Err(ExecError::UnknownTag(_))
        ));
        s.destroy_tag("L2").unwrap();
        assert!(s.destroy_tag("L2").is_err());
    }

    #[test]
    fn header_allocation_stacks_and_masks() {
        let mut s = state_with_l3();
        s.allocate_header(96, 32).unwrap();
        s.write_header(96, Value::Concrete(0xc0a80101)).unwrap();
        // Re-allocating at the same address masks the old value...
        s.allocate_header(96, 32).unwrap();
        s.write_header(96, Value::Concrete(0x08080808)).unwrap();
        assert_eq!(
            s.read_header(96).unwrap().value,
            Value::Concrete(0x08080808)
        );
        assert_eq!(s.header_stack_depth(96), 2);
        // ...and deallocation restores it.
        s.deallocate_header(96, Some(32)).unwrap();
        assert_eq!(
            s.read_header(96).unwrap().value,
            Value::Concrete(0xc0a80101)
        );
        s.deallocate_header(96, None).unwrap();
        assert!(s.read_header(96).is_err());
    }

    #[test]
    fn header_memory_safety_checks() {
        let mut s = state_with_l3();
        s.allocate_header(0, 32).unwrap();
        // Overlapping a different live allocation fails.
        assert!(matches!(
            s.allocate_header(16, 32),
            Err(ExecError::Overlap { .. })
        ));
        // Disjoint allocation succeeds.
        s.allocate_header(32, 16).unwrap();
        // Deallocation width check.
        assert!(matches!(
            s.deallocate_header(32, Some(32)),
            Err(ExecError::WidthMismatch { .. })
        ));
        // Reading an unallocated address fails (the L4-before-decap case).
        assert!(matches!(
            s.read_header(1000),
            Err(ExecError::Unallocated { .. })
        ));
        // Concrete writes are masked to the field width.
        s.write_header(32, Value::Concrete(0x1ffff)).unwrap();
        assert_eq!(s.read_header(32).unwrap().value, Value::Concrete(0xffff));
    }

    #[test]
    fn metadata_stacking_and_local_shadowing() {
        let mut s = ExecState::new();
        s.allocate_meta("orig-ip", 32);
        s.write_meta("orig-ip", Value::Concrete(1));
        // A local allocation by NAT instance "nat1" shadows the global entry.
        let local = ExecState::local_meta_key("orig-ip", "local:nat1:");
        s.allocate_meta(local.clone(), 32);
        s.write_meta(local.clone(), Value::Concrete(2));
        assert_eq!(s.meta_key_for("orig-ip", "local:nat1:"), local);
        assert_eq!(s.meta_key_for("orig-ip", "local:nat2:"), "orig-ip");
        assert_eq!(
            s.read_field(&FieldRef::meta("orig-ip"), "local:nat1:")
                .unwrap()
                .value,
            Value::Concrete(2)
        );
        assert_eq!(
            s.read_field(&FieldRef::meta("orig-ip"), "local:nat2:")
                .unwrap()
                .value,
            Value::Concrete(1)
        );
        // Unknown metadata read fails.
        assert!(s.read_meta("missing").is_err());
        assert!(s.deallocate_meta("missing", None).is_err());
    }

    #[test]
    fn meta_keys_matching_globs() {
        let mut s = ExecState::new();
        for key in ["OPT2", "OPT4", "OPT30", "SIZE2", "VAL2"] {
            s.allocate_meta(key, 16);
        }
        let mut opts = s.meta_keys_matching("OPT*");
        opts.sort();
        assert_eq!(opts, vec!["OPT2", "OPT30", "OPT4"]);
        assert_eq!(s.meta_keys_matching("*2").len(), 3);
        assert_eq!(s.meta_keys_matching("NONE*").len(), 0);
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("OPT*", "OPT30"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b", "ac"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exactly"));
    }

    #[test]
    fn expression_evaluation() {
        let mut s = state_with_l3();
        let mut symbols = VarAllocator::new();
        s.allocate_header(16, 16).unwrap(); // IpLength at L3+16
        s.write_header(16, Value::Concrete(1500)).unwrap();
        let f = fields::ip_length().field();
        // Concrete arithmetic.
        let v = s
            .eval_expr(&Expr::reference(f.clone()).plus(20), &mut symbols, 16, "")
            .unwrap();
        assert_eq!(v, Value::Concrete(1520));
        // Symbolic arithmetic carries offsets.
        let sym = symbols.fresh(16);
        s.write_header(16, Value::symbolic(sym)).unwrap();
        let v = s
            .eval_expr(&Expr::reference(f.clone()).plus(20), &mut symbols, 16, "")
            .unwrap();
        assert_eq!(
            v,
            Value::Sym {
                var: sym,
                offset: 20
            }
        );
        // Fresh symbolic values get distinct variables.
        let a = s
            .eval_expr(&Expr::symbolic(), &mut symbols, 16, "")
            .unwrap();
        let b = s
            .eval_expr(&Expr::symbolic(), &mut symbols, 16, "")
            .unwrap();
        assert_ne!(a, b);
        // Sum of two symbols is rejected.
        let bad = Expr::reference(f.clone()).add(Expr::reference(f));
        assert!(s.eval_expr(&bad, &mut symbols, 16, "").is_err());
    }

    #[test]
    fn condition_lowering() {
        let mut s = state_with_l3();
        let mut symbols = VarAllocator::new();
        let dst_addr = 128;
        s.allocate_header(dst_addr, 32).unwrap();
        let var = symbols.fresh(32);
        s.write_header(dst_addr, Value::symbolic(var)).unwrap();
        let f = fields::ip_dst().field();
        let lowered = s
            .lower_condition(&Condition::eq(f.clone(), 42u64), &mut symbols, "")
            .unwrap();
        assert_eq!(
            lowered,
            Formula::cmp(CmpOp::Eq, Term::var(var), Term::Const(42))
        );
        // Prefix match on symbolic value lowers to PrefixMatch.
        let m = s
            .lower_condition(
                &Condition::matches_ipv4_prefix(f.clone(), 0x0a000000, 8),
                &mut symbols,
                "",
            )
            .unwrap();
        assert!(matches!(m, Formula::PrefixMatch { .. }));
        // Prefix match on a concrete value folds to a constant.
        s.write_header(dst_addr, Value::Concrete(0x0a000001))
            .unwrap();
        let m = s
            .lower_condition(
                &Condition::matches_ipv4_prefix(f.clone(), 0x0a000000, 8),
                &mut symbols,
                "",
            )
            .unwrap();
        assert_eq!(m, Formula::True);
        // Referencing an unknown field is a memory error.
        let bad = Condition::eq(fields::tcp_dst().field(), 80u64);
        assert!(s.lower_condition(&bad, &mut symbols, "").is_err());
    }

    #[test]
    fn path_condition_accumulates() {
        let mut s = ExecState::new();
        let mut symbols = VarAllocator::new();
        let var = symbols.fresh(16);
        assert_eq!(s.path_condition(), Formula::True);
        s.add_constraint(Formula::eq_const(var, 80));
        s.add_constraint(Formula::True); // ignored
        s.add_constraint(Formula::cmp_const(CmpOp::Ge, var, 10));
        assert_eq!(s.constraint_count(), 2);
        assert_eq!(s.constraint_atoms(), 2);
        assert!(matches!(s.path_condition(), Formula::And(_)));
    }

    #[test]
    fn dropping_a_very_long_trace_does_not_overflow_the_stack() {
        // Regression guard for Trace's iterative Drop: basic switch/router
        // models push one entry per table-entry `If`, so unshared traces
        // reach tens of thousands of nodes; a recursive drop would need one
        // stack frame per node.
        let mut s = ExecState::new();
        for i in 0..200_000 {
            s.push_trace(TraceEntry::Instruction(format!("i{i}")));
        }
        assert_eq!(s.trace().len(), 200_000);
        drop(s);
    }

    #[test]
    fn forked_state_mutations_never_leak_into_the_parent() {
        // The engine forks a path by cloning its ExecState; every container
        // inside is persistent (Arc-shared), so this checks the copy-on-write
        // boundary on all of them: headers, metadata, tags and trace.
        let mut parent = ExecState::new();
        parent.create_tag("L3", 0);
        parent.allocate_header(96, 32).unwrap();
        parent.write_header(96, Value::Concrete(1)).unwrap();
        parent.allocate_meta("flow", 16);
        parent.write_meta("flow", Value::Concrete(7));
        parent.push_trace(TraceEntry::Port("A:InputPort(0)".into()));
        let snapshot = parent.clone();

        let mut child = parent.clone();
        child.write_header(96, Value::Concrete(2)).unwrap();
        child.allocate_header(160, 16).unwrap();
        child.write_meta("flow", Value::Concrete(8));
        child.allocate_meta("nat", 16);
        child.create_tag("L4", 160);
        child.destroy_tag("L3").unwrap();
        child.push_trace(TraceEntry::Port("B:InputPort(0)".into()));
        child.deallocate_header(96, Some(32)).unwrap();

        // The parent is bit-for-bit what it was before the fork.
        assert_eq!(parent, snapshot);
        assert_eq!(parent.read_header(96).unwrap().value, Value::Concrete(1));
        assert!(!parent.header_allocated(160));
        assert_eq!(parent.read_meta("flow").unwrap().value, Value::Concrete(7));
        assert!(!parent.meta_allocated("nat"));
        assert_eq!(parent.tag("L3"), Some(0));
        assert_eq!(parent.tag("L4"), None);
        assert_eq!(parent.trace().len(), 1);
        // And parent-side mutations after the fork stay invisible to the
        // child.
        parent.write_meta("flow", Value::Concrete(99));
        assert_eq!(child.read_meta("flow").unwrap().value, Value::Concrete(8));
    }

    #[test]
    fn trace_records_ports() {
        let mut s = ExecState::new();
        s.push_trace(TraceEntry::Port("A:InputPort(0)".into()));
        s.push_trace(TraceEntry::Instruction("Forward(OutputPort(1))".into()));
        s.push_trace(TraceEntry::Port("B:InputPort(0)".into()));
        assert_eq!(s.ports_visited(), vec!["A:InputPort(0)", "B:InputPort(0)"]);
        assert_eq!(s.trace().len(), 3);
    }
}
