//! Network-verification queries (§6 of the paper).
//!
//! All queries operate on the [`ExecutionReport`] produced by
//! [`crate::engine::SymNet::inject`]:
//!
//! * **Reachability** — which output ports are reached, and under which
//!   constraints ([`reachable_ports`], [`allowed_values`]).
//! * **Invariants** — is a header field provably unchanged between injection
//!   and delivery ([`field_invariant`])?
//! * **Header visibility** — does an intermediate or final hop observe the
//!   same value the source wrote ([`field_invariant`] against any state)?
//! * **Loop detection** is performed online by the engine (Figure 5); the
//!   report exposes the affected paths via [`ExecutionReport::loops`].
//! * **Header memory safety** is enforced by construction during execution;
//!   violations terminate paths with [`crate::DropReason::Memory`].

use crate::engine::{ExecutionReport, PathReport};
use crate::error::ExecError;
use crate::network::ElementId;
use crate::state::ExecState;
use crate::value::Value;
use symnet_sefl::field::FieldRef;
use symnet_solver::{CmpOp, Formula, IntervalSet, PathCond, Solver};

/// Outcome of a semantic comparison under a path condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tristate {
    /// The property holds on every packet admitted by the path.
    Always,
    /// The property holds on no admitted packet.
    Never,
    /// The property holds on some admitted packets and fails on others.
    Sometimes,
}

/// Compares two values under a path condition given as a materialised
/// formula. Prefer [`values_equal_path`] when the shared-prefix handle of an
/// [`ExecState`] is at hand — it reuses the solver analysis cached on the
/// path-condition nodes during execution.
pub fn values_equal(
    solver: &mut Solver,
    path_condition: &Formula,
    a: &Value,
    b: &Value,
) -> Tristate {
    // Fast path: syntactically identical values are always equal.
    if a.same_value(b) {
        return Tristate::Always;
    }
    let eq = Formula::cmp(CmpOp::Eq, a.to_term(), b.to_term());
    if solver.implies(path_condition, &eq) {
        return Tristate::Always;
    }
    let both = Formula::and(vec![path_condition.clone(), eq]);
    if solver.is_unsat(&both) {
        Tristate::Never
    } else {
        Tristate::Sometimes
    }
}

/// Compares two values under a persistent path condition (see
/// [`ExecState::path_cond`]): the condition's cached cube normalisation is
/// reused and only the equality atom is folded in.
pub fn values_equal_path(
    solver: &mut Solver,
    path_condition: &PathCond,
    a: &Value,
    b: &Value,
) -> Tristate {
    if a.same_value(b) {
        return Tristate::Always;
    }
    let eq = Formula::cmp(CmpOp::Eq, a.to_term(), b.to_term());
    if solver.implies_path(path_condition, &eq) {
        return Tristate::Always;
    }
    if solver.check_assuming(path_condition, &eq).is_unsat() {
        Tristate::Never
    } else {
        Tristate::Sometimes
    }
}

/// Checks whether a header field is invariant between the injected packet and
/// the end of a path: the value observed at the end is provably equal to the
/// value the packet was injected with (§6 "Invariants" / "Header visibility").
pub fn field_invariant(
    injected: &ExecState,
    path: &PathReport,
    field: &FieldRef,
) -> Result<Tristate, ExecError> {
    let before = injected.read_field(field, "")?;
    let after = path.state.read_field(field, "")?;
    let mut solver = Solver::default();
    Ok(values_equal_path(
        &mut solver,
        path.state.path_cond(),
        &before.value,
        &after.value,
    ))
}

/// The set of values a field can take at the end of a path — "which packets
/// are allowed, ... and how the packets look like at the output" (§6
/// Reachability). Returns `None` if the field is not allocated on this path or
/// the projection is unknown.
pub fn allowed_values(path: &PathReport, field: &FieldRef) -> Option<IntervalSet> {
    let slot = path.state.read_field(field, "").ok()?;
    match slot.value {
        Value::Concrete(v) => Some(IntervalSet::point(v as i128)),
        Value::Sym { var, offset } => {
            let mut solver = Solver::default();
            solver
                .feasible_values_path(path.state.path_cond(), var)
                .map(|s| s.shift(offset as i128))
        }
    }
}

/// The distinct `(element, output port)` pairs reached by delivered paths.
pub fn reachable_ports(report: &ExecutionReport) -> Vec<(ElementId, usize)> {
    let mut out: Vec<(ElementId, usize)> = report
        .delivered()
        .filter_map(|p| match p.status {
            crate::engine::PathStatus::Delivered { element, port } => Some((element, port)),
            _ => None,
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// True if at least one delivered path ends at the given element (any output
/// port).
pub fn is_reachable(report: &ExecutionReport, element: ElementId) -> bool {
    reachable_ports(report).iter().any(|(e, _)| *e == element)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::VarAllocator;

    #[test]
    fn values_equal_tristate() {
        let mut solver = Solver::default();
        let mut symbols = VarAllocator::new();
        let x = symbols.fresh(16);
        let y = symbols.fresh(16);
        let vx = Value::symbolic(x);
        let vy = Value::symbolic(y);
        // Same symbol: always equal.
        assert_eq!(
            values_equal(&mut solver, &Formula::True, &vx, &vx),
            Tristate::Always
        );
        // Unconstrained distinct symbols: sometimes equal.
        assert_eq!(
            values_equal(&mut solver, &Formula::True, &vx, &vy),
            Tristate::Sometimes
        );
        // Constrained to be equal: always.
        let eq = Formula::cmp(CmpOp::Eq, vx.to_term(), vy.to_term());
        assert_eq!(values_equal(&mut solver, &eq, &vx, &vy), Tristate::Always);
        // Disjoint concrete ranges: never.
        let cond = Formula::and(vec![
            Formula::cmp_const(CmpOp::Le, x, 10),
            Formula::cmp_const(CmpOp::Ge, y, 20),
        ]);
        assert_eq!(values_equal(&mut solver, &cond, &vx, &vy), Tristate::Never);
        // Concrete values compare directly.
        assert_eq!(
            values_equal(
                &mut solver,
                &Formula::True,
                &Value::Concrete(5),
                &Value::Concrete(5)
            ),
            Tristate::Always
        );
        assert_eq!(
            values_equal(
                &mut solver,
                &Formula::True,
                &Value::Concrete(5),
                &Value::Concrete(6)
            ),
            Tristate::Never
        );
    }
}
