//! Execution errors and path termination reasons.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An error raised while executing a single SEFL instruction. Errors do not
/// abort the analysis: they terminate the execution path that raised them,
/// exactly as the paper specifies ("the execution path fails").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecError {
    /// A header access referenced a tag that does not exist.
    UnknownTag(String),
    /// A header access hit an address with no live allocation — e.g. reading
    /// an L4 field of an IP-in-IP packet before decapsulation (§7).
    Unallocated {
        /// The offending bit address.
        address: i64,
    },
    /// An allocation would overlap an existing live allocation at a different
    /// address (broken encapsulation layout).
    Overlap {
        /// The requested bit address.
        address: i64,
        /// Requested width in bits.
        width: u16,
        /// The conflicting existing allocation's address.
        existing: i64,
    },
    /// `Deallocate` found a different width than the one it expected.
    WidthMismatch {
        /// Expected width in bits.
        expected: u16,
        /// Actual allocated width in bits.
        actual: u16,
    },
    /// A metadata entry was read or written without being allocated.
    UnknownMetadata(String),
    /// `CreateTag` was given an address that does not evaluate to a concrete
    /// value, or an expression used an unsupported operand combination (e.g.
    /// the sum of two symbolic values).
    Unsupported(String),
    /// An instruction was used in a place the engine does not allow (e.g.
    /// `Forward` inside output-port code).
    ModelError(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownTag(tag) => write!(f, "unknown tag \"{tag}\""),
            ExecError::Unallocated { address } => {
                write!(f, "access to unallocated header address {address}")
            }
            ExecError::Overlap {
                address,
                width,
                existing,
            } => write!(
                f,
                "allocation of {width} bits at {address} overlaps allocation at {existing}"
            ),
            ExecError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "deallocation width mismatch: expected {expected}, found {actual}"
                )
            }
            ExecError::UnknownMetadata(key) => write!(f, "unknown metadata \"{key}\""),
            ExecError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            ExecError::ModelError(msg) => write!(f, "model error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A run-level failure of the execution engine. Unlike [`ExecError`], which
/// terminates a single symbolic path, an `EngineError` aborts the whole
/// analysis: no report is produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A worker thread (or the single-threaded driver) panicked while
    /// processing a path — a defect in a model or in the engine itself. The
    /// engine catches the first panic, stops the scheduler, drains the
    /// remaining workers cleanly and surfaces the panic message here instead
    /// of cascading poisoned-mutex panics through the whole pool.
    WorkerPanicked {
        /// The panic payload, rendered as text (`"<non-string panic>"` when
        /// the payload is neither `&str` nor `String`).
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanicked { message } => {
                write!(f, "engine worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Why an execution path terminated without being delivered.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The model called `Fail(msg)`.
    Failed(String),
    /// A `Constrain` made the path condition unsatisfiable.
    Unsatisfiable(String),
    /// An `If` branch whose assumed condition is infeasible (this is pruning,
    /// not an error; such paths are hidden from reports by default).
    InfeasibleBranch,
    /// A header-memory-safety violation or other execution error.
    Memory(String),
    /// The input-port code finished without forwarding the packet.
    NotForwarded,
    /// The per-path hop budget was exhausted.
    HopLimit,
    /// The Figure 5 state-inclusion check found a loop.
    Loop,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::Failed(msg) => write!(f, "Fail(\"{msg}\")"),
            DropReason::Unsatisfiable(detail) => write!(f, "unsatisfiable constraint: {detail}"),
            DropReason::InfeasibleBranch => write!(f, "infeasible branch"),
            DropReason::Memory(detail) => write!(f, "memory safety violation: {detail}"),
            DropReason::NotForwarded => write!(f, "packet not forwarded"),
            DropReason::HopLimit => write!(f, "hop limit exceeded"),
            DropReason::Loop => write!(f, "loop detected"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_readably() {
        assert!(ExecError::UnknownTag("L4".into())
            .to_string()
            .contains("L4"));
        assert!(ExecError::Unallocated { address: 128 }
            .to_string()
            .contains("128"));
        assert!(ExecError::WidthMismatch {
            expected: 32,
            actual: 16
        }
        .to_string()
        .contains("32"));
        assert!(DropReason::Failed("Mac unknown".into())
            .to_string()
            .contains("Mac unknown"));
        assert!(DropReason::Loop.to_string().contains("loop"));
    }
}
