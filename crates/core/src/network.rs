//! The network graph: elements, ports and unidirectional links.
//!
//! "To analyze a network configuration, SymNet requires as input the
//! descriptions of all the network elements and their connections. Each
//! network element has input and output ports ... Connections are
//! unidirectional from output to input ports, so we need two pairs of ports
//! and two links for bidirectional connectivity" (§5).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use symnet_sefl::ElementProgram;

/// Identifier of an element inside a [`Network`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub usize);

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A network: elements plus unidirectional links from output ports to input
/// ports.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Network {
    elements: Vec<ElementProgram>,
    /// (source element, source output port) → (destination element,
    /// destination input port).
    links: BTreeMap<(ElementId, usize), (ElementId, usize)>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds an element and returns its id.
    pub fn add_element(&mut self, program: ElementProgram) -> ElementId {
        let id = ElementId(self.elements.len());
        self.elements.push(program);
        id
    }

    /// Returns the element with the given id.
    pub fn element(&self, id: ElementId) -> &ElementProgram {
        &self.elements[id.0]
    }

    /// Replaces an element's program in place, keeping its id and links — how
    /// the resident service applies a rule delta to a copy-on-write topology
    /// snapshot. The new program must keep the old port counts (links refer
    /// to ports by index); changing the shape of an element is a topology
    /// change, not a rule delta. Panics on a port-count mismatch.
    pub fn replace_element(&mut self, id: ElementId, program: ElementProgram) {
        let old = &self.elements[id.0];
        assert_eq!(
            (old.input_count, old.output_count),
            (program.input_count, program.output_count),
            "replacement for element {id} must keep its port counts"
        );
        self.elements[id.0] = program;
    }

    /// Returns the element with the given name, if unique names are used.
    pub fn element_by_name(&self, name: &str) -> Option<ElementId> {
        self.elements
            .iter()
            .position(|e| e.name == name)
            .map(ElementId)
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Iterates over `(id, element)` pairs.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &ElementProgram)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (ElementId(i), e))
    }

    /// Total number of ports (input + output) across all elements — the
    /// "connected network ports" metric of §8.5.
    pub fn port_count(&self) -> usize {
        self.elements
            .iter()
            .map(|e| e.input_count + e.output_count)
            .sum()
    }

    /// Adds a unidirectional link from an output port to an input port.
    /// Panics if either port does not exist or the output port is already
    /// linked — both are construction-time modeling bugs.
    pub fn add_link(
        &mut self,
        from: ElementId,
        from_output: usize,
        to: ElementId,
        to_input: usize,
    ) {
        assert!(
            from_output < self.element(from).output_count,
            "element {from} has no output port {from_output}"
        );
        assert!(
            to_input < self.element(to).input_count,
            "element {to} has no input port {to_input}"
        );
        let previous = self.links.insert((from, from_output), (to, to_input));
        assert!(
            previous.is_none(),
            "output port {from_output} of element {from} is already linked"
        );
    }

    /// Adds a pair of links forming a bidirectional connection:
    /// `a.out[a_out] → b.in[b_in]` and `b.out[b_out] → a.in[a_in]`.
    #[allow(clippy::too_many_arguments)]
    pub fn add_duplex_link(
        &mut self,
        a: ElementId,
        a_out: usize,
        a_in: usize,
        b: ElementId,
        b_out: usize,
        b_in: usize,
    ) {
        self.add_link(a, a_out, b, b_in);
        self.add_link(b, b_out, a, a_in);
    }

    /// Re-points an *existing* link at a new destination input port, keeping
    /// the source output unchanged — the topology-mutation primitive of the
    /// differential fuzzer (a cabling change or failover reroute). Panics if
    /// `(from, from_output)` is not currently linked or the target input port
    /// does not exist, both of which are mutation-generator bugs.
    pub fn rewire_link(
        &mut self,
        from: ElementId,
        from_output: usize,
        to: ElementId,
        to_input: usize,
    ) {
        assert!(
            to_input < self.element(to).input_count,
            "element {to} has no input port {to_input}"
        );
        let slot = self
            .links
            .get_mut(&(from, from_output))
            .unwrap_or_else(|| panic!("output port {from_output} of element {from} is not linked"));
        *slot = (to, to_input);
    }

    /// The destination of the link leaving `(element, output_port)`, if any.
    pub fn link_from(&self, element: ElementId, output_port: usize) -> Option<(ElementId, usize)> {
        self.links.get(&(element, output_port)).copied()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all links as `((from, out_port), (to, in_port))`.
    pub fn links(&self) -> impl Iterator<Item = ((ElementId, usize), (ElementId, usize))> + '_ {
        self.links.iter().map(|(k, v)| (*k, *v))
    }

    /// A short human-readable label for a port, used in traces and reports.
    pub fn port_label(&self, element: ElementId, input: bool, port: usize) -> String {
        let name = &self.element(element).name;
        if input {
            format!("{name}:InputPort({port})")
        } else {
            format!("{name}:OutputPort({port})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_sefl::Instruction;

    fn two_element_net() -> (Network, ElementId, ElementId) {
        let mut net = Network::new();
        let a = net.add_element(
            ElementProgram::new("A", 1, 2).with_any_input_code(Instruction::forward(0)),
        );
        let b = net.add_element(
            ElementProgram::new("B", 2, 1).with_any_input_code(Instruction::forward(0)),
        );
        (net, a, b)
    }

    #[test]
    fn elements_and_lookup() {
        let (net, a, b) = two_element_net();
        assert_eq!(net.element_count(), 2);
        assert_eq!(net.element(a).name, "A");
        assert_eq!(net.element_by_name("B"), Some(b));
        assert_eq!(net.element_by_name("C"), None);
        assert_eq!(net.port_count(), 3 + 3);
    }

    #[test]
    fn links_are_unidirectional() {
        let (mut net, a, b) = two_element_net();
        net.add_link(a, 0, b, 0);
        assert_eq!(net.link_from(a, 0), Some((b, 0)));
        assert_eq!(net.link_from(a, 1), None);
        assert_eq!(net.link_from(b, 0), None);
        assert_eq!(net.link_count(), 1);
    }

    #[test]
    fn duplex_links_create_both_directions() {
        let (mut net, a, b) = two_element_net();
        net.add_duplex_link(a, 0, 0, b, 0, 0);
        assert_eq!(net.link_from(a, 0), Some((b, 0)));
        assert_eq!(net.link_from(b, 0), Some((a, 0)));
    }

    #[test]
    #[should_panic(expected = "already linked")]
    fn double_linking_an_output_port_panics() {
        let (mut net, a, b) = two_element_net();
        net.add_link(a, 0, b, 0);
        net.add_link(a, 0, b, 1);
    }

    #[test]
    #[should_panic(expected = "has no output port")]
    fn linking_missing_port_panics() {
        let (mut net, a, b) = two_element_net();
        net.add_link(a, 5, b, 0);
    }

    #[test]
    fn replace_element_keeps_ids_and_links() {
        let (mut net, a, b) = two_element_net();
        net.add_link(a, 0, b, 0);
        net.replace_element(
            a,
            ElementProgram::new("A'", 1, 2).with_any_input_code(Instruction::forward(1)),
        );
        assert_eq!(net.element(a).name, "A'");
        assert_eq!(net.link_from(a, 0), Some((b, 0)));
        assert_eq!(net.element_count(), 2);
    }

    #[test]
    #[should_panic(expected = "port counts")]
    fn replace_element_rejects_shape_changes() {
        let (mut net, a, _) = two_element_net();
        net.replace_element(a, ElementProgram::new("A'", 2, 2));
    }

    #[test]
    fn port_labels() {
        let (net, a, _) = two_element_net();
        assert_eq!(net.port_label(a, true, 0), "A:InputPort(0)");
        assert_eq!(net.port_label(a, false, 1), "A:OutputPort(1)");
    }
}
