//! Allocation of fresh symbolic variables.

use symnet_solver::SymVar;

/// Allocates process-unique symbolic variables for one analysis run. Every
/// call to `Assign(v, SymbolicValue())`, every symbolic packet field and every
/// NAT port mapping gets its own variable from here.
#[derive(Clone, Debug, Default)]
pub struct VarAllocator {
    next: u64,
}

impl VarAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        VarAllocator::default()
    }

    /// Creates an allocator whose first fresh variable will have id `next` —
    /// how a replay interpreter resumes the id sequence of a symbolic run
    /// (ids `0..next` belong to the injected packet's construction).
    pub fn starting_at(next: u64) -> Self {
        VarAllocator { next }
    }

    /// Returns a fresh symbolic variable of the given bit width.
    pub fn fresh(&mut self, width: u16) -> SymVar {
        let id = self.next;
        self.next += 1;
        SymVar::new(id, width.min(64) as u8)
    }

    /// Number of variables allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_variables_are_unique_and_width_clamped() {
        let mut alloc = VarAllocator::new();
        let a = alloc.fresh(32);
        let b = alloc.fresh(32);
        let c = alloc.fresh(128);
        assert_ne!(a.id, b.id);
        assert_ne!(b.id, c.id);
        assert_eq!(a.width, 32);
        assert_eq!(c.width, 64);
        assert_eq!(alloc.allocated(), 3);
    }
}
