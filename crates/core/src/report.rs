//! JSON rendering of execution reports.
//!
//! "The output of the tool is the list of explored paths in json format. For
//! every path SymNet lists all variables and their constraints at the end of
//! the execution as well as all the instructions and ports this path has
//! visited" (§7.1). [`report_to_json`] produces exactly that, keyed by the
//! standard field shorthands of Figure 6 where the packet layout allows it.

use crate::engine::{ExecutionReport, PathReport, PathStatus};
use crate::network::Network;
use crate::state::TraceEntry;
use serde_json::{json, Value as Json};
use symnet_sefl::fields;

/// Renders a full execution report as a JSON value.
pub fn report_to_json(report: &ExecutionReport, network: &Network) -> Json {
    json!({
        "paths": report.paths.iter().map(|p| path_to_json(p, network)).collect::<Vec<_>>(),
        "path_count": report.path_count(),
        "delivered_count": report.delivered().count(),
        "solver": {
            "calls": report.solver_stats.calls,
            "sat": report.solver_stats.sat,
            "unsat": report.solver_stats.unsat,
            "unknown": report.solver_stats.unknown,
            // Incremental-solver reuse of shared path-condition prefixes.
            // Deterministic across thread counts (the cache lives on the
            // shared prefix node, not on the worker); the per-worker memo
            // counters are deliberately absent here, and so are the
            // work-stealing scheduler counters (`ExecutionReport::sched`:
            // local-deque hits, steals, overflow pushes) — which worker pops
            // which path is scheduling-dependent, and this JSON must stay
            // byte-identical for every thread count. The sec85 table and the
            // bench harness print both.
            "prefix_cache_hits": report.solver_stats.prefix_hits,
            "prefix_cache_misses": report.solver_stats.prefix_misses,
            "time_in_solver_us": report.solver_stats.time_in_solver.as_micros() as u64,
        },
        "wall_time_us": report.wall_time.as_micros() as u64,
    })
}

/// Renders a full execution report as pretty-printed JSON text.
pub fn report_to_json_string(report: &ExecutionReport, network: &Network) -> String {
    serde_json::to_string_pretty(&report_to_json(report, network))
        .expect("report JSON serialisation cannot fail")
}

/// Renders only the strategy-independent part of a report: the paths and
/// their counts, without the solver counters.
///
/// This is the comparison form of the resident service
/// ([`crate::service::VerifyService`]): an incremental re-verification and a
/// from-scratch run explore the same paths but perform different amounts of
/// solver work, so their counters legitimately differ — exactly like wall
/// time and the scheduler counters, which [`report_to_json`] already
/// excludes. Everything that describes the *network's behaviour* (statuses,
/// headers, metadata, constraints, traces, ids) is included and must be
/// byte-identical across strategies, solver modes and thread counts.
pub fn canonical_report_json(report: &ExecutionReport, network: &Network) -> Json {
    json!({
        "paths": report.paths.iter().map(|p| path_to_json(p, network)).collect::<Vec<_>>(),
        "path_count": report.path_count(),
        "delivered_count": report.delivered().count(),
    })
}

/// Renders the canonical (strategy-independent) report as pretty-printed
/// JSON text — see [`canonical_report_json`].
pub fn canonical_report_json_string(report: &ExecutionReport, network: &Network) -> String {
    serde_json::to_string_pretty(&canonical_report_json(report, network))
        .expect("report JSON serialisation cannot fail")
}

/// Renders one path as a JSON value.
pub fn path_to_json(path: &PathReport, network: &Network) -> Json {
    let status = match &path.status {
        PathStatus::Delivered { element, port } => json!({
            "kind": "delivered",
            "element": network.element(*element).name,
            "port": port,
        }),
        PathStatus::Dropped { element, reason } => json!({
            "kind": "dropped",
            "element": network.element(*element).name,
            "reason": reason.to_string(),
        }),
    };

    // Header fields, resolved via the standard Figure 6 shorthands when the
    // path's tags make them addressable.
    let mut headers = serde_json::Map::new();
    let known = [
        fields::ether_dst(),
        fields::ether_src(),
        fields::ether_type(),
        fields::vlan_id(),
        fields::ip_length(),
        fields::ip_ttl(),
        fields::ip_proto(),
        fields::ip_src(),
        fields::ip_dst(),
        fields::tcp_src(),
        fields::tcp_dst(),
        fields::tcp_seq(),
        fields::tcp_payload(),
        fields::udp_src(),
        fields::udp_dst(),
    ];
    for f in known {
        if let Ok(addr) = path.state.resolve_addr(&f.addr) {
            if let Ok(slot) = path.state.read_header(addr) {
                headers.insert(f.name.to_string(), json!(slot.value.to_string()));
            }
        }
    }

    let metadata: serde_json::Map<String, Json> = path
        .state
        .metadata()
        .map(|(k, slot)| (k.to_string(), json!(slot.value.to_string())))
        .collect();

    let constraints: Vec<String> = match path.state.path_condition() {
        symnet_solver::Formula::And(parts) => parts.iter().map(|f| f.to_string()).collect(),
        symnet_solver::Formula::True => Vec::new(),
        other => vec![other.to_string()],
    };

    let trace: Vec<String> = path
        .state
        .trace()
        .into_iter()
        .map(|e| match e {
            TraceEntry::Port(p) => format!("port {p}"),
            TraceEntry::Instruction(i) => i.clone(),
            TraceEntry::Message(m) => format!("message: {m}"),
        })
        .collect();

    json!({
        "id": path.id,
        "status": status,
        "ports": path.ports_visited(),
        "headers": headers,
        "metadata": metadata,
        "constraints": constraints,
        "trace": trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SymNet;
    use crate::network::Network;
    use symnet_sefl::cond::Condition;
    use symnet_sefl::fields::tcp_dst;
    use symnet_sefl::packet::symbolic_tcp_packet;
    use symnet_sefl::{ElementProgram, Instruction};

    #[test]
    fn report_serialises_paths_headers_and_constraints() {
        let mut net = Network::new();
        let fw = net.add_element(ElementProgram::new("fw", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
                Instruction::forward(0),
            ]),
        ));
        let engine = SymNet::new(net);
        let report = engine.inject(fw, 0, &symbolic_tcp_packet());
        let json = report_to_json(&report, engine.network());
        assert_eq!(json["path_count"], 1);
        assert_eq!(json["delivered_count"], 1);
        let path = &json["paths"][0];
        assert_eq!(path["status"]["kind"], "delivered");
        assert_eq!(path["status"]["element"], "fw");
        assert!(path["headers"]["TcpDst"].is_string());
        assert!(path["constraints"]
            .as_array()
            .unwrap()
            .iter()
            .any(|c| c.as_str().unwrap().contains("== 80")));
        assert!(!path["ports"].as_array().unwrap().is_empty());
        // Pretty printing produces valid JSON text.
        let text = report_to_json_string(&report, engine.network());
        assert!(text.contains("\"TcpDst\""));
    }
}
