//! # symnet-core
//!
//! The SymNet symbolic execution engine (§5 and §6 of the paper).
//!
//! The engine takes a [`network::Network`] — a set of elements, each with an
//! SEFL [`symnet_sefl::ElementProgram`], connected by unidirectional links
//! from output ports to input ports — injects a symbolic packet at an input
//! port and explores every execution path the packet can take through the
//! network:
//!
//! * [`state::ExecState`] is the per-path execution state: the packet-header
//!   map (bit address → stack of values), the metadata map, the tags, the path
//!   condition and the trace of visited ports and executed instructions.
//! * [`engine::SymNet`] is the executor: it interprets SEFL instructions,
//!   forks paths at `If`/`Fork`, prunes infeasible paths with the constraint
//!   solver, follows links between elements, detects loops with the Figure 5
//!   state-inclusion check and enforces header memory safety.
//! * [`verify`] implements the network-verification queries of §6 on top of
//!   the execution report: reachability, field invariance, header visibility.
//! * [`report`] renders execution reports as JSON, mirroring the paper's
//!   "list of explored paths in json format" output.
//! * [`service`] keeps verification *resident*: standing queries absorb rule
//!   deltas and re-verify only invalidated path suffixes.
//! * [`server`] serves many concurrent queries against a mutating network:
//!   epoch-pinned snapshots, a bounded admission queue and a persistent
//!   work-stealing pool shared by all in-flight queries.
//!
//! ```
//! use symnet_core::engine::SymNet;
//! use symnet_core::network::Network;
//! use symnet_sefl::{packet, Condition, Instruction, ElementProgram};
//! use symnet_sefl::fields::tcp_dst;
//!
//! // A one-element network that only lets HTTP traffic through.
//! let mut net = Network::new();
//! let fw = net.add_element(
//!     ElementProgram::new("http-only", 1, 1).with_any_input_code(Instruction::block(vec![
//!         Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
//!         Instruction::forward(0),
//!     ])),
//! );
//! let symnet = SymNet::new(net);
//! let report = symnet.inject(fw, 0, &packet::symbolic_tcp_packet());
//! assert_eq!(report.delivered().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod error;
pub mod network;
pub mod pmap;
pub mod report;
pub mod server;
pub mod service;
pub mod state;
pub mod symbols;
pub mod value;
pub mod verify;

pub use engine::{ExecConfig, ExecutionReport, PathReport, PathStatus, SymNet};
pub use error::{DropReason, EngineError, ExecError};
pub use network::{ElementId, Network};
pub use server::{ServeHandle, ServedReport, ServerConfig, ServerError, ServerStats, SymNetServer};
pub use service::{QueryId, ServiceReport, ServiceStats, UpdateStats, VerifyService};
pub use state::ExecState;
pub use value::Value;
