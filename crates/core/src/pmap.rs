//! A persistent, path-copying ordered map.
//!
//! [`PMap`] is the storage behind [`crate::state::ExecState`]'s header and
//! metadata maps. Symbolic execution forks a path at every `If`/`Fork`, and a
//! fork used to deep-clone both `BTreeMap`s; with `PMap` a fork is one `Arc`
//! clone of the root pointer, and the first mutation after a fork copies only
//! the O(log n) nodes on the search path (KLEE-style copy-on-write state
//! forking — siblings share everything they have not written to).
//!
//! The tree is a *weight-balanced* binary search tree (the Adams variant used
//! by Haskell's `Data.Map`, Δ = 3 / ratio = 2), chosen over an HAMT because
//! the engine and the reports need cheap **in-order** iteration: reports
//! serialize maps in key order, and [`crate::engine`]'s `For` instruction
//! snapshots metadata keys sorted. Rebalancing is deterministic — the shape
//! of the tree is a function of the insertion/removal sequence alone — so
//! serialized reports stay byte-identical across thread counts.
//!
//! Mutation comes in two flavours:
//!
//! * [`PMap::insert`] / [`PMap::remove`] build a new spine functionally
//!   (fresh `Arc`s along the search path, everything else shared), and
//! * [`PMap::get_mut`] copies the search path in place via [`Arc::make_mut`],
//!   which is free when the path is unshared — the common case for the hot
//!   `Assign`-to-an-existing-field loop of a single path between forks.

use serde::{Content, Deserialize, Deserializer, Error, Serialize};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Weight-balance parameters (Adams' trees as tuned for Haskell `Data.Map`):
/// a node is balanced while neither subtree is more than `DELTA` times the
/// size of the other; an imbalanced node is repaired with a single rotation
/// when the inner grandchild is light (`< RATIO ×` the outer one) and a
/// double rotation otherwise.
const DELTA: usize = 3;
const RATIO: usize = 2;

/// One tree node. Shared between map versions via `Arc`; `Clone` (required
/// by [`Arc::make_mut`]) copies the key/value and bumps the child refcounts.
#[derive(Clone, Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    /// Number of entries in the subtree rooted here.
    size: usize,
    left: Link<K, V>,
    right: Link<K, V>,
}

type Link<K, V> = Option<Arc<Node<K, V>>>;

/// A persistent ordered map with `Arc`-shared nodes and copy-on-write
/// mutation. `Clone` is O(1); lookup, insertion, removal and in-place value
/// mutation are O(log n) and copy at most the nodes on the search path.
///
/// The API mirrors the subset of `std::collections::BTreeMap` the execution
/// state uses, and the serde encoding matches `BTreeMap`'s exactly (a JSON
/// object for string keys, a `[key, value]` pair list otherwise), so swapping
/// the representation does not change any serialized report.
pub struct PMap<K, V> {
    root: Link<K, V>,
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PMap { root: None }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        size(&self.root)
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// In-order iterator over `(&key, &value)` pairs.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut iter = Iter { stack: Vec::new() };
        iter.push_left(&self.root);
        iter
    }
}

impl<K: Ord, V> PMap<K, V> {
    /// Returns a reference to the value for `key`, if present.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let mut link = &self.root;
        while let Some(node) = link {
            match key.cmp(node.key.borrow()) {
                Ordering::Less => link = &node.left,
                Ordering::Greater => link = &node.right,
                Ordering::Equal => return Some(&node.value),
            }
        }
        None
    }

    /// True if `key` has an entry.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.get(key).is_some()
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Inserts or replaces the entry for `key`. Path-copying: O(log n) fresh
    /// nodes, everything off the search path shared with the previous
    /// version (and with every forked sibling still holding it).
    pub fn insert(&mut self, key: K, value: V) {
        self.root = insert_link(&self.root, key, value);
    }

    /// Removes the entry for `key`, returning its value (a clone when the
    /// node is shared with another map version). Path-copying like
    /// [`PMap::insert`].
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        let (new_root, value) = remove_link(&self.root, key)?;
        self.root = new_root;
        Some(value)
    }

    /// Returns a mutable reference to the value for `key`, copying the nodes
    /// on the search path first if they are shared with another map version
    /// ([`Arc::make_mut`]). When this map is the sole owner — a path mutating
    /// its own state between forks — no node is copied. A missing key is
    /// detected with a read-only probe first, so a miss never un-shares
    /// anything.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        if !self.contains_key(key) {
            return None;
        }
        get_mut_link(&mut self.root, key)
    }
}

fn get_mut_link<'a, K, V, Q>(link: &'a mut Link<K, V>, key: &Q) -> Option<&'a mut V>
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    let node = Arc::make_mut(link.as_mut()?);
    match key.cmp(node.key.borrow()) {
        Ordering::Less => get_mut_link(&mut node.left, key),
        Ordering::Greater => get_mut_link(&mut node.right, key),
        Ordering::Equal => Some(&mut node.value),
    }
}

fn size<K, V>(link: &Link<K, V>) -> usize {
    link.as_ref().map_or(0, |n| n.size)
}

fn mk<K, V>(key: K, value: V, left: Link<K, V>, right: Link<K, V>) -> Link<K, V> {
    let size = 1 + size(&left) + size(&right);
    Some(Arc::new(Node {
        key,
        value,
        size,
        left,
        right,
    }))
}

/// Rebuilds a node whose subtrees changed by at most one entry, restoring the
/// weight-balance invariant with at most a double rotation.
fn balance<K: Clone, V: Clone>(
    key: K,
    value: V,
    left: Link<K, V>,
    right: Link<K, V>,
) -> Link<K, V> {
    let (ls, rs) = (size(&left), size(&right));
    if ls + rs <= 1 {
        return mk(key, value, left, right);
    }
    if rs > DELTA * ls {
        // Right-heavy. `right` is non-empty (rs >= 2).
        let r = right.as_ref().expect("right-heavy node has a right child");
        if size(&r.left) < RATIO * size(&r.right) {
            // Single left rotation.
            let r = r.as_ref();
            mk(
                r.key.clone(),
                r.value.clone(),
                mk(key, value, left, r.left.clone()),
                r.right.clone(),
            )
        } else {
            // Double rotation: lift right.left.
            let r = r.as_ref();
            let rl = r.left.as_ref().expect("heavy inner grandchild").as_ref();
            mk(
                rl.key.clone(),
                rl.value.clone(),
                mk(key, value, left, rl.left.clone()),
                mk(
                    r.key.clone(),
                    r.value.clone(),
                    rl.right.clone(),
                    r.right.clone(),
                ),
            )
        }
    } else if ls > DELTA * rs {
        // Left-heavy, mirror image.
        let l = left.as_ref().expect("left-heavy node has a left child");
        if size(&l.right) < RATIO * size(&l.left) {
            let l = l.as_ref();
            mk(
                l.key.clone(),
                l.value.clone(),
                l.left.clone(),
                mk(key, value, l.right.clone(), right),
            )
        } else {
            let l = l.as_ref();
            let lr = l.right.as_ref().expect("heavy inner grandchild").as_ref();
            mk(
                lr.key.clone(),
                lr.value.clone(),
                mk(
                    l.key.clone(),
                    l.value.clone(),
                    l.left.clone(),
                    lr.left.clone(),
                ),
                mk(key, value, lr.right.clone(), right),
            )
        }
    } else {
        mk(key, value, left, right)
    }
}

fn insert_link<K: Ord + Clone, V: Clone>(link: &Link<K, V>, key: K, value: V) -> Link<K, V> {
    match link {
        None => mk(key, value, None, None),
        Some(n) => match key.cmp(&n.key) {
            // Replacement: sizes are unchanged, no rebalancing needed.
            Ordering::Equal => mk(key, value, n.left.clone(), n.right.clone()),
            Ordering::Less => balance(
                n.key.clone(),
                n.value.clone(),
                insert_link(&n.left, key, value),
                n.right.clone(),
            ),
            Ordering::Greater => balance(
                n.key.clone(),
                n.value.clone(),
                n.left.clone(),
                insert_link(&n.right, key, value),
            ),
        },
    }
}

/// `None` means the key was absent (the original tree is unchanged);
/// otherwise the rebuilt tree plus the removed value (cloned out of the
/// possibly-shared node).
fn remove_link<K, V, Q>(link: &Link<K, V>, key: &Q) -> Option<(Link<K, V>, V)>
where
    K: Ord + Clone + Borrow<Q>,
    V: Clone,
    Q: Ord + ?Sized,
{
    let n = link.as_ref()?;
    match key.cmp(n.key.borrow()) {
        Ordering::Less => {
            let (left, value) = remove_link(&n.left, key)?;
            Some((
                balance(n.key.clone(), n.value.clone(), left, n.right.clone()),
                value,
            ))
        }
        Ordering::Greater => {
            let (right, value) = remove_link(&n.right, key)?;
            Some((
                balance(n.key.clone(), n.value.clone(), n.left.clone(), right),
                value,
            ))
        }
        Ordering::Equal => Some((glue(&n.left, &n.right), n.value.clone())),
    }
}

/// Joins two subtrees whose every key in `left` is smaller than every key in
/// `right`, pulling the replacement root from the heavier side.
fn glue<K: Ord + Clone, V: Clone>(left: &Link<K, V>, right: &Link<K, V>) -> Link<K, V> {
    match (left, right) {
        (None, _) => right.clone(),
        (_, None) => left.clone(),
        _ if size(left) > size(right) => {
            let ((k, v), rest) = extract_max(left);
            balance(k, v, rest, right.clone())
        }
        _ => {
            let ((k, v), rest) = extract_min(right);
            balance(k, v, left.clone(), rest)
        }
    }
}

fn extract_min<K: Clone, V: Clone>(link: &Link<K, V>) -> ((K, V), Link<K, V>) {
    let n = link.as_ref().expect("extract_min of empty tree");
    match &n.left {
        None => ((n.key.clone(), n.value.clone()), n.right.clone()),
        Some(_) => {
            let (kv, rest) = extract_min(&n.left);
            (
                kv,
                balance(n.key.clone(), n.value.clone(), rest, n.right.clone()),
            )
        }
    }
}

fn extract_max<K: Clone, V: Clone>(link: &Link<K, V>) -> ((K, V), Link<K, V>) {
    let n = link.as_ref().expect("extract_max of empty tree");
    match &n.right {
        None => ((n.key.clone(), n.value.clone()), n.left.clone()),
        Some(_) => {
            let (kv, rest) = extract_max(&n.right);
            (
                kv,
                balance(n.key.clone(), n.value.clone(), n.left.clone(), rest),
            )
        }
    }
}

/// In-order borrowing iterator over a [`PMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iter<'a, K, V> {
    fn push_left(&mut self, mut link: &'a Link<K, V>) {
        while let Some(node) = link {
            self.stack.push(node);
            link = &node.left;
        }
    }
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        self.push_left(&node.right);
        Some((&node.key, &node.value))
    }
}

impl<'a, K, V> IntoIterator for &'a PMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Iter<'a, K, V> {
        self.iter()
    }
}

// `Clone` is a root-pointer copy — the O(1) fork this type exists for. Not
// derived: a derive would demand `K: Clone, V: Clone` it does not need.
impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap::new()
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        // Forked siblings usually still share their root: compare pointers
        // before walking. Tree *shapes* may differ for equal content (shape
        // depends on the operation sequence), so the slow path compares the
        // in-order entry sequences, exactly like `BTreeMap` equality.
        if let (Some(a), Some(b)) = (&self.root, &other.root) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<K: Eq, V: Eq> Eq for PMap<K, V> {}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = PMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

// Same wire encoding as the `BTreeMap` it replaced (see the serde shim): a
// JSON-style object when every key serializes to a string, a sequence of
// `[key, value]` pairs otherwise. Keys come out in order either way, so the
// encoding is deterministic.
impl<K: Serialize + Ord, V: Serialize> Serialize for PMap<K, V> {
    fn to_content(&self) -> Content {
        let pairs: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
            Content::Map(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Content::Str(s) => (s, v),
                        _ => unreachable!("checked above"),
                    })
                    .collect(),
            )
        } else {
            Content::Seq(
                pairs
                    .into_iter()
                    .map(|(k, v)| Content::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord + Clone, V: Deserialize<'de> + Clone> Deserialize<'de>
    for PMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries: Vec<(Content, Content)> = match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| (Content::Str(k), v))
                .collect(),
            Content::Seq(pairs) => pairs
                .into_iter()
                .map(|pair| match pair {
                    Content::Seq(mut kv) if kv.len() == 2 => {
                        let v = kv.pop().expect("len 2");
                        let k = kv.pop().expect("len 2");
                        Ok((k, v))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected [key, value] pair, found {other:?}"
                    ))),
                })
                .collect::<Result<_, _>>()?,
            other => {
                return Err(D::Error::custom(format!(
                    "expected map or sequence of pairs, found {other:?}"
                )))
            }
        };
        let mut map = PMap::new();
        for (k, v) in entries {
            let key = serde::from_content(k).map_err(D::Error::custom)?;
            let value = serde::from_content(v).map_err(D::Error::custom)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Checks the BST order, the cached sizes and the weight-balance
    /// invariant on every node.
    fn check_invariants<K: Ord + fmt::Debug, V>(map: &PMap<K, V>) {
        fn walk<K: Ord + fmt::Debug, V>(link: &Link<K, V>) -> usize {
            let Some(n) = link else { return 0 };
            if let Some(l) = &n.left {
                assert!(
                    l.key < n.key,
                    "left child {:?} >= parent {:?}",
                    l.key,
                    n.key
                );
            }
            if let Some(r) = &n.right {
                assert!(
                    r.key > n.key,
                    "right child {:?} <= parent {:?}",
                    r.key,
                    n.key
                );
            }
            let (ls, rs) = (walk(&n.left), walk(&n.right));
            assert_eq!(n.size, 1 + ls + rs, "stale cached size");
            if ls + rs > 1 {
                assert!(
                    ls <= DELTA * rs && rs <= DELTA * ls,
                    "imbalanced node: left {ls}, right {rs}"
                );
            }
            n.size
        }
        walk(&map.root);
    }

    #[test]
    fn insert_get_remove() {
        let mut map: PMap<i64, &str> = PMap::new();
        assert!(map.is_empty());
        map.insert(2, "b");
        map.insert(1, "a");
        map.insert(3, "c");
        assert_eq!(map.len(), 3);
        assert_eq!(map.get(&1), Some(&"a"));
        assert_eq!(map.get(&4), None);
        map.insert(1, "A"); // overwrite
        assert_eq!(map.get(&1), Some(&"A"));
        assert_eq!(map.len(), 3);
        assert_eq!(map.remove(&2), Some("b"));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&2), None);
        assert_eq!(map.remove(&42), None); // absent: no-op
        assert_eq!(map.len(), 2);
        check_invariants(&map);
    }

    #[test]
    fn iteration_is_in_key_order() {
        let mut map: PMap<i64, i64> = PMap::new();
        for k in [5i64, 1, 9, 3, 7, 2, 8] {
            map.insert(k, k * 10);
        }
        let keys: Vec<i64> = map.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        // The worst case for an unbalanced BST: monotonically growing keys
        // (exactly how header fields are allocated). Depth must stay
        // logarithmic, which `check_invariants` implies via weight balance.
        let mut map: PMap<i64, i64> = PMap::new();
        for k in 0..1000 {
            map.insert(k, k);
        }
        check_invariants(&map);
        fn depth<K, V>(link: &Link<K, V>) -> usize {
            link.as_ref()
                .map_or(0, |n| 1 + depth(&n.left).max(depth(&n.right)))
        }
        assert!(
            depth(&map.root) <= 25,
            "depth {} at 1000 keys",
            depth(&map.root)
        );
    }

    #[test]
    fn clone_is_shared_and_mutation_unshares() {
        let mut parent: PMap<String, i64> = PMap::new();
        parent.insert("a".into(), 1);
        parent.insert("b".into(), 2);
        let mut child = parent.clone();
        // Mutating the child never leaks into the parent...
        *child.get_mut(&"a".to_string()).unwrap() = 100;
        child.insert("c".into(), 3);
        assert_eq!(parent.get(&"a".to_string()), Some(&1));
        assert_eq!(parent.get(&"c".to_string()), None);
        // ...and vice versa.
        parent.remove(&"b".to_string());
        assert_eq!(child.get(&"b".to_string()), Some(&2));
    }

    #[test]
    fn serde_encoding_matches_btreemap() {
        // String keys: object encoding.
        let mut p: PMap<String, u64> = PMap::new();
        let mut b: BTreeMap<String, u64> = BTreeMap::new();
        for (k, v) in [("x", 1u64), ("a", 2), ("m", 3)] {
            p.insert(k.to_string(), v);
            b.insert(k.to_string(), v);
        }
        assert_eq!(p.to_content(), b.to_content());
        // Integer keys: pair-sequence encoding.
        let mut p: PMap<i64, u64> = PMap::new();
        let mut b: BTreeMap<i64, u64> = BTreeMap::new();
        for k in [-32i64, 0, 96] {
            p.insert(k, k.unsigned_abs());
            b.insert(k, k.unsigned_abs());
        }
        assert_eq!(p.to_content(), b.to_content());
        // Roundtrip.
        let back: PMap<i64, u64> = serde::from_content(p.to_content()).unwrap();
        assert_eq!(back, p);
    }

    proptest! {
        /// Random edit scripts agree with `BTreeMap` at every step: same
        /// lookup results, same length, same in-order entry sequence — and
        /// the tree invariants hold throughout.
        #[test]
        fn agrees_with_btreemap(
            ops in prop::collection::vec((0u8..3, -40i64..40, 0i64..1000), 0..120)
        ) {
            let mut pmap: PMap<i64, i64> = PMap::new();
            let mut bmap: BTreeMap<i64, i64> = BTreeMap::new();
            for (op, key, value) in ops {
                match op {
                    0 | 1 => { // insert twice as often as remove
                        pmap.insert(key, value);
                        bmap.insert(key, value);
                    }
                    _ => {
                        pmap.remove(&key);
                        bmap.remove(&key);
                    }
                }
                prop_assert_eq!(pmap.len(), bmap.len());
                prop_assert_eq!(pmap.get(&key), bmap.get(&key));
            }
            check_invariants(&pmap);
            let pairs: Vec<(i64, i64)> = pmap.iter().map(|(k, v)| (*k, *v)).collect();
            let expect: Vec<(i64, i64)> = bmap.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(pairs, expect);
            prop_assert_eq!(pmap.to_content(), bmap.to_content());
        }

        /// Fork isolation: a forked map sees the parent's entries, and
        /// mutations on either side after the fork never leak to the other.
        #[test]
        fn forks_are_isolated(
            base in prop::collection::vec((-40i64..40, 0i64..1000), 0..60),
            edits in prop::collection::vec((0u8..3, -40i64..40, 0i64..1000), 1..60),
        ) {
            let mut parent: PMap<i64, i64> = PMap::new();
            for (k, v) in base {
                parent.insert(k, v);
            }
            let snapshot: Vec<(i64, i64)> = parent.iter().map(|(k, v)| (*k, *v)).collect();
            let mut child = parent.clone();
            for (op, key, value) in edits {
                match op {
                    0 => child.insert(key, value),
                    1 => {
                        child.remove(&key);
                    }
                    _ => {
                        if let Some(v) = child.get_mut(&key) {
                            *v = value;
                        }
                    }
                }
            }
            check_invariants(&child);
            let after: Vec<(i64, i64)> = parent.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(parent.len(), snapshot.len());
            prop_assert_eq!(after, snapshot);
        }
    }
}
