//! The resident verification service: load a topology once, keep standing
//! queries verified across rule deltas.
//!
//! Every `inject` of the batch engine rebuilds and re-explores the whole
//! topology, which throws away exactly the structure a changing network
//! leaves intact: a MAC learn, a route withdrawal or a NAT binding touches
//! *one* element, yet the overwhelming majority of explored paths never
//! traverse it. [`VerifyService`] closes that gap:
//!
//! * **Load once.** The service owns the network behind an [`Arc`]; engine
//!   snapshots ([`SymNet::shared`]) are O(1) and applying a delta is
//!   copy-on-write ([`Arc::make_mut`]) — in-flight queries keep reading the
//!   snapshot they started on.
//! * **Checkpoints.** The first verification of a standing query records one
//!   O(1) `PendingPath` checkpoint per element entry (persistent state,
//!   history and allocator — everything needed to resume exploration from
//!   that entry).
//! * **Delta invalidation.** A rule delta replaces one element's program
//!   ([`crate::network::Network::replace_element`]). The lineage-minimal set
//!   of checkpoints *entering* the changed element becomes the re-exploration
//!   roots; every cached result and checkpoint at or below such a root is
//!   dropped, and the solver analyses cached on their now-stale
//!   path-condition suffixes are cleared
//!   ([`symnet_solver::PathCond::invalidate_deeper_than`]).
//! * **Delta re-verification.** The next [`VerifyService::verify`] re-explores
//!   only the invalidated subtrees — with the *new* element program — and
//!   merges the fresh results with the kept ones. Because every emitted path
//!   carries its fork lineage, the merged report sorts into exactly the order
//!   a from-scratch run produces: the canonical JSON
//!   ([`crate::report::canonical_report_json`]) is byte-identical to
//!   re-running the whole query, at any thread count, in either solver mode.
//!
//! Results reported by an incremental verification differ from a from-scratch
//! run only in the solver/scheduler *counters* (which measure work actually
//! performed, like wall time) — which is why the canonical JSON excludes
//! them, just as the standard rendering already excludes wall time and
//! scheduler counters.

use crate::engine::{
    finalize_report, panic_message, ExecConfig, ExecutionReport, PathBudget, PendingPath,
    RawResult, SchedStats, SymNet,
};
use crate::error::EngineError;
use crate::network::{ElementId, Network};
use crate::state::ExecState;
use std::sync::Arc;
use std::time::Instant;
use symnet_sefl::{ElementProgram, Instruction};
use symnet_solver::SolverStats;

/// Handle of a standing query registered with [`VerifyService::add_query`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(usize);

/// How a verification was answered, and what the delta machinery did for it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// True when the query was (re-)explored from scratch (first
    /// verification of the query).
    pub from_scratch: bool,
    /// Paths reused from the previous verification without any re-execution.
    pub kept_paths: usize,
    /// Paths produced by (re-)exploration during this verification.
    pub reexplored_paths: usize,
    /// Invalidated element-entry checkpoints this verification re-explored
    /// from (0 when the cached result was reusable wholesale).
    pub invalidated_roots: usize,
    /// Path-condition nodes whose cached solver analyses were cleared by the
    /// deltas answered by this verification.
    pub cache_nodes_cleared: usize,
}

/// What one delta application invalidated across the standing queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Standing queries with at least one checkpoint entering the changed
    /// element.
    pub queries_affected: usize,
    /// Re-exploration roots now pending across all affected queries
    /// (lineage-minimal, merged with roots pending from earlier deltas).
    pub roots_invalidated: usize,
    /// Cached path results dropped as stale.
    pub results_dropped: usize,
    /// Cached element-entry checkpoints dropped as stale.
    pub checkpoints_dropped: usize,
    /// Path-condition nodes whose cached solver analyses were cleared.
    pub cache_nodes_cleared: usize,
}

impl UpdateStats {
    fn absorb(&mut self, other: UpdateStats) {
        self.queries_affected += other.queries_affected;
        self.roots_invalidated += other.roots_invalidated;
        self.results_dropped += other.results_dropped;
        self.checkpoints_dropped += other.checkpoints_dropped;
        self.cache_nodes_cleared += other.cache_nodes_cleared;
    }
}

/// The answer to one [`VerifyService::verify`] call.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// The full execution report, byte-identical (canonical rendering) to a
    /// from-scratch run of the query against the current topology.
    pub report: ExecutionReport,
    /// What the delta machinery reused versus re-explored.
    pub stats: ServiceStats,
}

/// The cached outcome of a query's last verification.
struct VerifiedState {
    /// The post-construction injected state (construction does not execute
    /// element programs, so deltas never invalidate it).
    injected: ExecState,
    /// Every still-valid raw result, keyed by fork lineage.
    results: Vec<RawResult>,
    /// Every still-valid element-entry checkpoint.
    checkpoints: Vec<PendingPath>,
    /// Invalidated entry checkpoints awaiting re-exploration (lineage-minimal).
    pending_roots: Vec<PendingPath>,
    /// Cache nodes cleared by deltas since the last verification (carried
    /// into the next verification's [`ServiceStats`]).
    cache_nodes_cleared: usize,
    /// True when the verification hit [`ExecConfig::max_paths`]. A truncated
    /// run discarded part of its frontier at emission time, so its
    /// checkpoints do not cover the network: the next delta drops the whole
    /// cached state and re-verification starts from scratch — which keeps
    /// the cap exact and the verdicts stale-free (a capped run is
    /// scheduling-dependent anyway, so there is no byte-identical incremental
    /// answer to preserve).
    truncated: bool,
}

/// One standing query: an injection specification plus its cached outcome.
struct QuerySession {
    name: String,
    element: ElementId,
    input_port: usize,
    packet: Instruction,
    state: Option<VerifiedState>,
}

/// A long-lived verification engine over one topology (see the module docs).
pub struct VerifyService {
    network: Arc<Network>,
    config: ExecConfig,
    sessions: Vec<QuerySession>,
}

impl VerifyService {
    /// Creates a service over a topology with an explicit configuration.
    pub fn new(network: Network, config: ExecConfig) -> Self {
        VerifyService {
            network: Arc::new(network),
            config,
            sessions: Vec::new(),
        }
    }

    /// The current topology snapshot.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The execution configuration shared by every query.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// An O(1) engine snapshot over the current topology — what an ad-hoc
    /// (non-standing) query or a from-scratch baseline runs against. The
    /// snapshot keeps the topology it was taken from alive even across later
    /// [`VerifyService::apply_update`] calls (copy-on-write).
    pub fn snapshot(&self) -> SymNet {
        SymNet::shared(self.network.clone(), self.config.clone())
    }

    /// The current topology as a shared snapshot (O(1)). This is the bridge
    /// to the concurrent serving subsystem: hand the clone to
    /// [`SymNetServer::start`](crate::server::SymNetServer) (via
    /// [`Network::clone`]) to serve the service's current epoch to many
    /// concurrent clients while this service keeps its incremental sessions.
    pub fn network_shared(&self) -> Arc<Network> {
        Arc::clone(&self.network)
    }

    /// Registers a standing query: inject a packet built by `packet` at
    /// `element`'s input port `input_port`. Nothing is explored until the
    /// first [`VerifyService::verify`].
    pub fn add_query(
        &mut self,
        name: impl Into<String>,
        element: ElementId,
        input_port: usize,
        packet: Instruction,
    ) -> QueryId {
        let id = QueryId(self.sessions.len());
        self.sessions.push(QuerySession {
            name: name.into(),
            element,
            input_port,
            packet,
            state: None,
        });
        id
    }

    /// The name a standing query was registered under.
    pub fn query_name(&self, id: QueryId) -> &str {
        &self.sessions[id.0].name
    }

    /// The registered standing queries, in registration order.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> {
        (0..self.sessions.len()).map(QueryId)
    }

    /// Applies a rule delta: replaces `element`'s program on a copy-on-write
    /// topology snapshot and invalidates, for every standing query, the
    /// cached results and checkpoints at or below an entry into the changed
    /// element. The stale subtrees are re-explored (with the new program) by
    /// the next [`VerifyService::verify`] of each affected query.
    pub fn apply_update(&mut self, element: ElementId, program: ElementProgram) -> UpdateStats {
        Arc::make_mut(&mut self.network).replace_element(element, program);
        let mut stats = UpdateStats::default();
        for session in &mut self.sessions {
            let Some(state) = &mut session.state else {
                continue;
            };
            if state.truncated {
                // The run hit `max_paths`: the unexplored frontier was
                // discarded at emission time, so the checkpoints do not cover
                // the network and *any* delta may affect paths we never saw.
                // Drop the cached state; the next verify is from scratch.
                stats.absorb(UpdateStats {
                    queries_affected: 1,
                    roots_invalidated: 0,
                    results_dropped: state.results.len(),
                    checkpoints_dropped: state.checkpoints.len(),
                    cache_nodes_cleared: 0,
                });
                session.state = None;
                continue;
            }
            stats.absorb(invalidate_session(state, element));
        }
        stats
    }

    /// Verifies one standing query: from scratch on first call, re-exploring
    /// only delta-invalidated subtrees afterwards. The canonical rendering of
    /// the returned report is byte-identical to a from-scratch run against
    /// the current topology.
    pub fn verify(&mut self, id: QueryId) -> Result<ServiceReport, EngineError> {
        verify_session(&self.network, &self.config, &mut self.sessions[id.0])
    }

    /// Verifies every standing query concurrently, one thread per query over
    /// a shared read snapshot (each query's exploration additionally fans out
    /// over the work-stealing pool). Results are in registration order.
    pub fn verify_all(&mut self) -> Vec<Result<ServiceReport, EngineError>> {
        let network = self.network.clone();
        let config = self.config.clone();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .sessions
                .iter_mut()
                .map(|session| {
                    let network = network.clone();
                    let config = &config;
                    scope.spawn(move || verify_session(&network, config, session))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(EngineError::WorkerPanicked {
                            message: panic_message(payload.as_ref()),
                        })
                    })
                })
                .collect()
        })
    }
}

/// True if lineage `a` is a (non-strict) prefix of lineage `b` — i.e. the
/// pending path at `b` is the one at `a` or descends from it.
fn is_prefix(a: &[u32], b: &[u32]) -> bool {
    b.len() >= a.len() && b[..a.len()] == *a
}

/// The root (if any) whose subtree a lineage belongs to.
fn stale_root<'a>(roots: &'a [PendingPath], lineage: &[u32]) -> Option<&'a PendingPath> {
    roots.iter().find(|r| is_prefix(r.lineage(), lineage))
}

/// Reduces candidate re-exploration roots to the lineage-minimal set: a
/// candidate inside another candidate's subtree is dropped (re-exploring the
/// ancestor re-explores it too, with fresh post-delta state).
fn minimal_roots(mut candidates: Vec<PendingPath>) -> Vec<PendingPath> {
    candidates
        .sort_by(|a, b| (a.lineage().len(), a.lineage()).cmp(&(b.lineage().len(), b.lineage())));
    let mut roots: Vec<PendingPath> = Vec::new();
    for candidate in candidates {
        if stale_root(&roots, candidate.lineage()).is_none() {
            roots.push(candidate);
        }
    }
    roots
}

/// Invalidates one query's cached state against a change to `element`.
fn invalidate_session(state: &mut VerifiedState, element: ElementId) -> UpdateStats {
    let mut stats = UpdateStats::default();
    let new_roots: Vec<PendingPath> = state
        .checkpoints
        .iter()
        .filter(|cp| cp.element() == element)
        .cloned()
        .collect();
    if new_roots.is_empty() {
        // No checkpoint enters the changed element: either the query never
        // reaches it, or every entry is already inside a pending subtree
        // (whose re-exploration will use the new program anyway).
        return stats;
    }
    stats.queries_affected = 1;
    let mut candidates = std::mem::take(&mut state.pending_roots);
    candidates.extend(new_roots);
    let roots = minimal_roots(candidates);

    // Drop everything at or below an invalidated entry, clearing the solver
    // analyses cached on the now-stale path-condition suffixes (the conjuncts
    // pushed while executing the old program). The checkpoint prefix itself
    // stays cached — its constraints predate the changed element.
    let mut cleared = 0;
    state
        .results
        .retain(|r| match stale_root(&roots, r.key.parent()) {
            None => true,
            Some(root) => {
                cleared += r
                    .state
                    .path_cond()
                    .invalidate_deeper_than(root.state().path_cond().len());
                stats.results_dropped += 1;
                false
            }
        });
    state
        .checkpoints
        .retain(|cp| match stale_root(&roots, cp.lineage()) {
            None => true,
            Some(root) => {
                cleared += cp
                    .state()
                    .path_cond()
                    .invalidate_deeper_than(root.state().path_cond().len());
                stats.checkpoints_dropped += 1;
                false
            }
        });
    stats.cache_nodes_cleared = cleared;
    state.cache_nodes_cleared += cleared;
    stats.roots_invalidated = roots.len();
    state.pending_roots = roots;
    stats
}

/// Verifies one session against the given topology snapshot.
fn verify_session(
    network: &Arc<Network>,
    config: &ExecConfig,
    session: &mut QuerySession,
) -> Result<ServiceReport, EngineError> {
    let start = Instant::now();
    let engine = SymNet::shared(network.clone(), config.clone());
    match &mut session.state {
        // First verification: explore from scratch, recording checkpoints.
        None => {
            let budget = PathBudget::new(config.max_paths);
            let construction = engine.construct_roots(
                session.element,
                session.input_port,
                &session.packet,
                &budget,
            )?;
            let exploration = engine.explore(construction.roots, &budget, true)?;
            let mut results = construction.results;
            results.extend(exploration.results);
            let mut solver_stats = exploration.solver_stats;
            solver_stats.merge(&construction.solver_stats);
            let total = results.len();
            session.state = Some(VerifiedState {
                injected: construction.injected.clone(),
                results: results.clone(),
                checkpoints: exploration.checkpoints,
                pending_roots: Vec::new(),
                cache_nodes_cleared: 0,
                truncated: total >= config.max_paths,
            });
            Ok(ServiceReport {
                report: finalize_report(
                    results,
                    construction.injected,
                    solver_stats,
                    exploration.sched,
                    start,
                ),
                stats: ServiceStats {
                    from_scratch: true,
                    kept_paths: 0,
                    reexplored_paths: total,
                    invalidated_roots: 0,
                    cache_nodes_cleared: 0,
                },
            })
        }
        // Re-verification: re-explore only the invalidated subtrees.
        Some(state) => {
            let kept = state.results.len();
            let cache_nodes_cleared = std::mem::take(&mut state.cache_nodes_cleared);
            if state.pending_roots.is_empty() {
                // Nothing invalidated since the last verification: the cached
                // answer is the answer. No solver work is performed at all.
                return Ok(ServiceReport {
                    report: finalize_report(
                        state.results.clone(),
                        state.injected.clone(),
                        SolverStats::default(),
                        SchedStats::default(),
                        start,
                    ),
                    stats: ServiceStats {
                        from_scratch: false,
                        kept_paths: kept,
                        reexplored_paths: 0,
                        invalidated_roots: 0,
                        cache_nodes_cleared,
                    },
                });
            }
            // The kept paths already occupy report slots; the re-exploration
            // gets whatever budget remains, keeping `max_paths` exact.
            let budget = PathBudget::new(config.max_paths.saturating_sub(kept));
            let invalidated_roots = state.pending_roots.len();
            let exploration = engine.explore(state.pending_roots.clone(), &budget, true)?;
            state.pending_roots.clear();
            let reexplored = exploration.results.len();
            state.results.extend(exploration.results);
            state.checkpoints.extend(exploration.checkpoints);
            state.truncated = state.results.len() >= config.max_paths;
            Ok(ServiceReport {
                report: finalize_report(
                    state.results.clone(),
                    state.injected.clone(),
                    exploration.solver_stats,
                    exploration.sched,
                    start,
                ),
                stats: ServiceStats {
                    from_scratch: false,
                    kept_paths: kept,
                    reexplored_paths: reexplored,
                    invalidated_roots,
                    cache_nodes_cleared,
                },
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::canonical_report_json;
    use symnet_sefl::cond::Condition;
    use symnet_sefl::fields::{ip_dst, ip_ttl};
    use symnet_sefl::packet::symbolic_tcp_packet;
    use symnet_sefl::Expr;

    /// A tiny two-hop chain: src-switch forwards everything to a filter that
    /// drops unless IpDst matches a "learned" address.
    fn filter_program(allowed: u64) -> ElementProgram {
        ElementProgram::new("filter", 1, 1).with_any_input_code(Instruction::block(vec![
            Instruction::if_else(
                Condition::eq(ip_dst().field(), allowed),
                Instruction::forward(0),
                Instruction::fail("unknown destination"),
            ),
        ]))
    }

    /// `a` decrements the TTL and forks to the filter (port 0) and to an
    /// unlinked delivery port (port 1) — so a delta to the filter leaves the
    /// port-1 subtree intact for the service to keep.
    fn chain() -> (Network, ElementId, ElementId) {
        let mut net = Network::new();
        let a = net.add_element(ElementProgram::new("a", 1, 2).with_any_input_code(
            Instruction::block(vec![
                Instruction::assign(ip_ttl().field(), Expr::reference(ip_ttl().field()).minus(1)),
                Instruction::fork(vec![0, 1]),
            ]),
        ));
        let f = net.add_element(filter_program(10));
        net.add_link(a, 0, f, 0);
        (net, a, f)
    }

    #[test]
    fn first_verify_is_from_scratch_then_cached() {
        let (net, a, _) = chain();
        let mut service = VerifyService::new(net, ExecConfig::default());
        let q = service.add_query("reach", a, 0, symbolic_tcp_packet());
        let first = service.verify(q).unwrap();
        assert!(first.stats.from_scratch);
        assert!(first.report.path_count() > 0);
        let second = service.verify(q).unwrap();
        assert!(!second.stats.from_scratch);
        assert_eq!(second.stats.kept_paths, first.report.path_count());
        assert_eq!(second.stats.reexplored_paths, 0);
        // The cached answer is byte-identical to the fresh one.
        assert_eq!(
            canonical_report_json(&first.report, service.network()),
            canonical_report_json(&second.report, service.network()),
        );
    }

    #[test]
    fn delta_reverify_matches_from_scratch() {
        let (net, a, f) = chain();
        let mut service = VerifyService::new(net, ExecConfig::default());
        let q = service.add_query("reach", a, 0, symbolic_tcp_packet());
        service.verify(q).unwrap();

        // Delta: the filter learns a different address.
        let update = service.apply_update(f, filter_program(20));
        assert_eq!(update.queries_affected, 1);
        assert_eq!(update.roots_invalidated, 1);
        let incremental = service.verify(q).unwrap();
        assert!(!incremental.stats.from_scratch);
        assert!(incremental.stats.kept_paths > 0);
        assert!(incremental.stats.reexplored_paths > 0);

        // From-scratch baseline over the same (post-delta) snapshot.
        let scratch = service
            .snapshot()
            .try_inject(a, 0, &symbolic_tcp_packet())
            .unwrap();
        assert_eq!(
            canonical_report_json(&incremental.report, service.network()),
            canonical_report_json(&scratch, service.network()),
        );
        // The path through the filter carries the post-delta constraint.
        let path = incremental.report.delivered_at(f, 0).next().unwrap();
        assert!(path.state.path_condition().to_string().contains("== 20"));
    }

    #[test]
    fn unrelated_delta_invalidates_nothing() {
        let (mut net, _, _) = chain();
        let lonely = net.add_element(filter_program(99));
        let (a, _) = (ElementId(0), ElementId(1));
        let mut service = VerifyService::new(net, ExecConfig::default());
        let q = service.add_query("reach", a, 0, symbolic_tcp_packet());
        let first = service.verify(q).unwrap();
        let update = service.apply_update(lonely, filter_program(7));
        assert_eq!(update, UpdateStats::default());
        let second = service.verify(q).unwrap();
        assert_eq!(second.stats.kept_paths, first.report.path_count());
        assert_eq!(second.stats.reexplored_paths, 0);
    }

    #[test]
    fn verify_all_runs_every_query() {
        let (net, a, f) = chain();
        let mut service = VerifyService::new(net, ExecConfig::default());
        service.add_query("from-a", a, 0, symbolic_tcp_packet());
        service.add_query("from-filter", f, 0, symbolic_tcp_packet());
        let reports = service.verify_all();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.as_ref().unwrap().report.path_count() > 0);
        }
        assert_eq!(service.query_name(QueryId(0)), "from-a");
    }

    #[test]
    fn worker_panic_surfaces_through_the_service() {
        let mut net = Network::new();
        let bomb = net.add_element(
            ElementProgram::new("bomb", 1, 1).with_any_input_code(Instruction::abort("boom")),
        );
        let mut service = VerifyService::new(net, ExecConfig::default());
        let q = service.add_query("bomb", bomb, 0, symbolic_tcp_packet());
        let err = service.verify(q).expect_err("must fail");
        let EngineError::WorkerPanicked { message } = err;
        assert!(message.contains("boom"), "{message}");
        // The service survives: a later verify retries from scratch.
        let err = service.verify(q).expect_err("still failing");
        let EngineError::WorkerPanicked { message } = err;
        assert!(message.contains("boom"), "{message}");
    }
}
