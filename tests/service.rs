//! Resident-service regression tests: delta re-verification must never
//! return a stale verdict.
//!
//! The dangerous failure mode of incremental re-verification is a *stale
//! cache*: a delta replaces an element program, but a `PathCond` node shared
//! with an untouched prefix still holds a verdict computed against the old
//! program, and the re-verification silently reports the old network's
//! behaviour. These tests pin the contract from the other side: after any
//! delta stream, the incremental report must be byte-identical (canonical
//! JSON, which excludes the solver work counters) to a from-scratch
//! exploration of the updated network — both with the incremental solver and
//! with `SolverConfig::incremental = false`, which bypasses every
//! prefix-cache layer and recomputes each verdict from nothing.

use symnet_suite::core::engine::{ExecConfig, ExecutionReport, SymNet};
use symnet_suite::core::network::Network;
use symnet_suite::core::report::canonical_report_json_string;
use symnet_suite::core::VerifyService;
use symnet_suite::models::delta::Delta;
use symnet_suite::models::scenarios::{delta_fanout, fanout_mac};
use symnet_suite::sefl::packet::symbolic_tcp_packet;

fn canonical(report: &ExecutionReport, network: &Network) -> String {
    canonical_report_json_string(report, network)
}

/// MAC learn delta + re-verify: the incremental report must match both a
/// from-scratch run and a from-scratch run with the incremental solver
/// disabled, byte for byte.
#[test]
fn mac_delta_reverify_cannot_return_stale_verdicts() {
    let fanout = delta_fanout(3, 2);
    let access = fanout.access;
    let mut tables = fanout.tables;
    let mut service = VerifyService::new(fanout.network, ExecConfig::default().with_threads(1));
    let q = service.add_query("fanout", access, 0, symbolic_tcp_packet());

    let first = service.verify(q).expect("first verify");
    assert!(first.stats.from_scratch);
    assert_eq!(first.report.delivered().count(), 6);

    // A station with a fresh MAC appears behind leaf 2. The leaf learns it
    // first (the root hasn't yet): only paths entering leaf 2 may be
    // re-explored; the four paths through leaves 0 and 1 must be reused.
    let mac = fanout_mac(9, 0);
    tables
        .apply(
            &mut service,
            &Delta::MacLearn {
                element: fanout.leaves[2],
                mac,
                vlan: None,
                port: 0,
            },
        )
        .expect("leaf learn")
        .expect("leaf table changed");

    let incremental = service.verify(q).expect("incremental verify");
    assert!(!incremental.stats.from_scratch);
    assert!(
        incremental.stats.kept_paths >= 4,
        "paths avoiding the changed leaf must be reused, kept {}",
        incremental.stats.kept_paths
    );
    assert!(
        incremental.stats.reexplored_paths > 0,
        "paths through the changed leaf must be re-explored"
    );
    let scratch = service
        .snapshot()
        .try_inject(access, 0, &symbolic_tcp_packet())
        .expect("from-scratch inject");
    assert_eq!(
        canonical(&incremental.report, service.network()),
        canonical(&scratch, service.network()),
        "incremental re-verification diverged from from-scratch after the leaf delta"
    );

    // Then the root learns the MAC too — a delta on the element every path
    // traverses, so nothing survives and re-verification degenerates to a
    // (correct) full re-exploration.
    tables
        .apply(
            &mut service,
            &Delta::MacLearn {
                element: fanout.root,
                mac,
                vlan: None,
                port: 2,
            },
        )
        .expect("root learn")
        .expect("root table changed");
    let incremental = service.verify(q).expect("re-verify after root delta");
    assert!(!incremental.stats.from_scratch);
    // The egress switch forks per port, so the new station joins leaf 2's
    // port-0 path as a disjunct rather than adding a path — but its MAC must
    // now appear in that path's constraints (a stale verdict would still
    // show the old two-MAC disjunction).
    assert_eq!(incremental.report.delivered().count(), 6);
    let leaf2_path = incremental
        .report
        .delivered_at(fanout.leaves[2], 0)
        .next()
        .expect("leaf 2 port 0 still delivers");
    assert!(
        leaf2_path
            .state
            .path_condition()
            .to_string()
            .contains(&mac.to_string()),
        "the learned MAC must show up in the re-verified path condition"
    );

    // From-scratch on the updated topology, incremental solver on.
    let scratch = service
        .snapshot()
        .try_inject(access, 0, &symbolic_tcp_packet())
        .expect("from-scratch inject");
    assert_eq!(
        canonical(&incremental.report, service.network()),
        canonical(&scratch, service.network()),
        "incremental re-verification diverged from from-scratch"
    );

    // From-scratch with every solver cache disabled: if the incremental
    // report matched scratch only because both read the same stale cache,
    // this comparison catches it.
    let mut cold_config = ExecConfig::default().with_threads(1);
    cold_config.solver.incremental = false;
    let cold_engine = SymNet::with_config(service.network().clone(), cold_config);
    let cold = cold_engine
        .try_inject(access, 0, &symbolic_tcp_packet())
        .expect("non-incremental inject");
    assert_eq!(
        canonical(&incremental.report, service.network()),
        canonical(&cold, cold_engine.network()),
        "incremental re-verification diverged from the non-incremental solver"
    );
}

/// A delta that *removes* behaviour is the classic stale-verdict shape: the
/// old verdict said "delivered", the new network drops the packet. The aged
/// MAC's path must disappear from the incremental report.
#[test]
fn mac_age_delta_drops_the_stale_path() {
    let fanout = delta_fanout(2, 2);
    let access = fanout.access;
    let mut tables = fanout.tables;
    let mut service = VerifyService::new(fanout.network, ExecConfig::default().with_threads(1));
    let q = service.add_query("fanout", access, 0, symbolic_tcp_packet());
    assert_eq!(service.verify(q).unwrap().report.delivered().count(), 4);

    // The station behind leaf 0, port 0 goes away.
    let mac = fanout_mac(0, 0);
    for (element, _) in [(fanout.root, 0usize), (fanout.leaves[0], 0)] {
        tables
            .apply(
                &mut service,
                &Delta::MacAge {
                    element,
                    mac,
                    vlan: None,
                },
            )
            .expect("age")
            .expect("table changed");
    }

    let after = service.verify(q).unwrap();
    assert!(!after.stats.from_scratch);
    assert_eq!(
        after.report.delivered().count(),
        3,
        "a stale cached verdict resurrected the aged-out path"
    );
    let scratch = service
        .snapshot()
        .try_inject(access, 0, &symbolic_tcp_packet())
        .unwrap();
    assert_eq!(
        canonical(&after.report, service.network()),
        canonical(&scratch, service.network()),
    );
}

/// Repeated delta/verify rounds keep converging to from-scratch: state
/// carried across rounds (pending roots, kept results, cleared caches) never
/// accumulates drift.
#[test]
fn delta_streams_stay_convergent_over_many_rounds() {
    let fanout = delta_fanout(3, 2);
    let access = fanout.access;
    let mut tables = fanout.tables;
    let mut service = VerifyService::new(fanout.network, ExecConfig::default().with_threads(1));
    let q = service.add_query("fanout", access, 0, symbolic_tcp_packet());
    service.verify(q).unwrap();

    let stream = [
        Delta::MacLearn {
            element: fanout.leaves[0],
            mac: fanout_mac(8, 0),
            vlan: None,
            port: 1,
        },
        Delta::MacAge {
            element: fanout.leaves[1],
            mac: fanout_mac(1, 1),
            vlan: None,
        },
        Delta::MacLearn {
            element: fanout.root,
            mac: fanout_mac(8, 0),
            vlan: None,
            port: 0,
        },
        Delta::MacLearn {
            element: fanout.leaves[1],
            mac: fanout_mac(1, 1),
            vlan: None,
            port: 1,
        },
    ];
    for (round, delta) in stream.iter().enumerate() {
        tables
            .apply(&mut service, delta)
            .expect("delta applies")
            .expect("every delta in the stream changes its table");
        let incremental = service.verify(q).unwrap();
        let scratch = service
            .snapshot()
            .try_inject(access, 0, &symbolic_tcp_packet())
            .unwrap();
        assert_eq!(
            canonical(&incremental.report, service.network()),
            canonical(&scratch, service.network()),
            "round {round}: incremental diverged from from-scratch"
        );
    }
}
