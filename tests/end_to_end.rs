//! Cross-crate integration tests: the §6 verification queries run end to end
//! on networks assembled from the ready-made models.

use symnet_suite::core::engine::SymNet;
use symnet_suite::core::network::Network;
use symnet_suite::core::verify::{self, Tristate};
use symnet_suite::models::click::ip_mirror;
use symnet_suite::models::nat::{nat, NatConfig};
use symnet_suite::models::router::{router_egress, Fib};
use symnet_suite::models::switch::{switch_egress, MacTable};
use symnet_suite::models::tunnel::{decrypt, encrypt};
use symnet_suite::sefl::cond::Condition;
use symnet_suite::sefl::expr::Expr;
use symnet_suite::sefl::fields::{ip_dst, ip_src, tcp_payload, tcp_src};
use symnet_suite::sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_suite::sefl::Instruction;

/// Switch → router → NAT chained together: reachability, rewriting and
/// invariance all hold at once.
#[test]
fn switch_router_nat_pipeline() {
    let mut table = MacTable::new(2);
    table.add(0x0a, None, 0).add(0x0b, None, 1);
    let mut fib = Fib::new(2);
    fib.add(0x0a000000, 8, 0).add(0, 0, 1);

    let mut net = Network::new();
    let sw = net.add_element(switch_egress("sw", &table));
    let r = net.add_element(router_egress("r", &fib));
    let gw = net.add_element(nat("gw", NatConfig::default()));
    net.add_link(sw, 1, r, 0); // MAC 0x0b side goes to the router
    net.add_link(r, 1, gw, 0); // default route goes through the NAT

    let engine = SymNet::new(net);
    let report = engine.inject(sw, 0, &symbolic_tcp_packet());
    // Delivered at: switch port 0 (local MAC), router port 0 (10/8), NAT out.
    assert!(report.delivered_at(sw, 0).count() >= 1);
    assert!(report.delivered_at(r, 0).count() >= 1);
    let natted: Vec<_> = report.delivered_at(gw, 0).collect();
    assert_eq!(natted.len(), 1);
    let path = natted[0];
    // The path through the NAT carries all upstream constraints.
    let macs =
        verify::allowed_values(path, &symnet_suite::sefl::fields::ether_dst().field()).unwrap();
    assert!(macs.contains(0x0b) && !macs.contains(0x0a));
    let dsts = verify::allowed_values(path, &ip_dst().field()).unwrap();
    assert!(
        !dsts.contains(0x0a000001),
        "10/8 traffic went out the other interface"
    );
    // The NAT rewrote the source but not the destination.
    assert_eq!(
        verify::field_invariant(&report.injected, path, &ip_dst().field()),
        Ok(Tristate::Always)
    );
    assert_ne!(
        verify::field_invariant(&report.injected, path, &ip_src().field()),
        Ok(Tristate::Always)
    );
}

/// §7 encryption composed with a middlebox: the middlebox cannot observe the
/// payload, the receiver (after decryption) can.
#[test]
fn encrypted_payload_is_opaque_to_middleboxes() {
    let mut net = Network::new();
    let enc = net.add_element(encrypt("enc", 42));
    let middle = net.add_element(ip_mirror("middlebox"));
    let dec = net.add_element(decrypt("dec", 42));
    net.add_link(enc, 0, middle, 0);
    net.add_link(middle, 0, dec, 0);
    let engine = SymNet::new(net);
    let report = engine.inject(enc, 0, &symbolic_tcp_packet());
    let path = report.delivered_at(dec, 0).next().expect("delivered");
    // End-to-end the payload is restored.
    assert_eq!(
        verify::field_invariant(&report.injected, path, &tcp_payload().field()),
        Ok(Tristate::Always)
    );
}

/// Loop detection across elements (the §8.3 IPRewriter/IPMirror cycle): when a
/// symbolic packet can have identical source and destination, the mirrored
/// reply re-matches the forward mapping and loops; constraining src != dst
/// removes the loop.
#[test]
fn nat_mirror_loop_is_detected_and_fixed() {
    let build = |loop_into_forward: bool| {
        let mut net = Network::new();
        let n = net.add_element(nat("nat", NatConfig::default()));
        let m = net.add_element(ip_mirror("mirror"));
        net.add_link(n, 0, m, 0);
        // The buggy wiring of Figure 9(a'): the mirrored reply re-enters the
        // NAT's *forward* input, so it keeps being re-translated forever. The
        // fixed wiring sends it to the return input, where it must match the
        // recorded mapping and exits on output 1.
        net.add_link(m, 0, n, if loop_into_forward { 0 } else { 1 });
        (net, n)
    };
    let packet = Instruction::block(vec![
        symbolic_tcp_packet(),
        Instruction::constrain(Condition::ne(
            ip_src().field(),
            Expr::reference(ip_dst().field()),
        )),
        Instruction::constrain(Condition::lt(tcp_src().field(), 1024u64)),
        Instruction::constrain(Condition::ne(ip_src().field(), 0xc0a80101u64)),
        Instruction::constrain(Condition::ne(ip_dst().field(), 0xc0a80101u64)),
    ]);
    let (net, n) = build(true);
    let engine = SymNet::new(net);
    let report = engine.inject(n, 0, &packet);
    assert!(report.loops().count() >= 1, "expected a loop report");
    let (net, n) = build(false);
    let engine = SymNet::new(net);
    let report = engine.inject(n, 0, &packet);
    assert_eq!(
        report.loops().count(),
        0,
        "the corrected wiring has no loop"
    );
    assert!(
        report.delivered_at(n, 1).count() >= 1,
        "replies are translated back"
    );
}

/// The LPM example of §7 runs end to end through the egress router model.
#[test]
fn router_longest_prefix_match_end_to_end() {
    let mut fib = Fib::new(2);
    fib.add(0xc0a80001, 32, 0)
        .add(0x0a000000, 8, 0)
        .add(0xc0a80000, 24, 1)
        .add(0x0a0a0001, 32, 1);
    let mut net = Network::new();
    let r = net.add_element(router_egress("r", &fib));
    let engine = SymNet::new(net);
    // Concrete packet for the tricky destination 10.10.0.1.
    let pkt = Instruction::block(vec![
        symbolic_l3_tcp_packet(),
        Instruction::assign(ip_dst().field(), Expr::constant(0x0a0a0001)),
    ]);
    let report = engine.inject(r, 0, &pkt);
    assert_eq!(report.delivered_at(r, 1).count(), 1);
    assert_eq!(report.delivered_at(r, 0).count(), 0);
    // And the model agrees with the reference lookup for that address.
    assert_eq!(fib.lookup(0x0a0a0001), Some(1));
}
