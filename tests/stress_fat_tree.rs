//! Stress coverage over the `fat_tree` scenario generator: a k-ary three-layer
//! datacenter fabric of TTL-decrementing routers. The injected packet is
//! constrained to the union of real host /32s, so the unmutated fabric must
//! deliver (at least) one path per reachable host — the scaling law asserted
//! here — and every delivered bucket must admit a concrete witness packet.
//! Mirrors `tests/stress_ecmp.rs` for the new generator family.

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::core::report::canonical_report_json_string;
use symnet_suite::solver::Solver;
use symnet_suite::testgen::generators::{fat_tree, GeneratorConfig};

fn config(k: usize) -> GeneratorConfig {
    GeneratorConfig {
        seed: 0xFA7_7EE,
        size: k,
        entries: 8,
    }
}

/// Hosts in a k-ary fat tree: k pods x k/2 edges x k/2 host ports.
fn host_count(k: usize) -> usize {
    k * (k / 2) * (k / 2)
}

#[test]
fn fat_tree_delivers_every_host_bucket() {
    let scenario = fat_tree(&config(4));
    let engine = SymNet::with_config(
        scenario.network.clone(),
        ExecConfig {
            max_hops: scenario.max_hops,
            ..ExecConfig::default()
        },
    );
    let report = engine.inject(scenario.inject_at, scenario.inject_port, &scenario.packet);
    assert!(
        report.delivered().count() >= host_count(4),
        "k=4 fabric must deliver at least one path per host: {} < {}",
        report.delivered().count(),
        host_count(4)
    );
}

#[test]
fn fat_tree_path_counts_scale_with_arity() {
    let narrow = fat_tree(&config(2));
    let wide = fat_tree(&config(4));
    let narrow_report = SymNet::new(narrow.network.clone()).inject(
        narrow.inject_at,
        narrow.inject_port,
        &narrow.packet,
    );
    let wide_report =
        SymNet::new(wide.network.clone()).inject(wide.inject_at, wide.inject_port, &wide.packet);
    // k=2 has 2 hosts, k=4 has 16: delivered paths must scale at least with
    // the host ratio's conservative half (core-level ECMP can add more).
    assert!(narrow_report.delivered().count() >= host_count(2));
    assert!(
        wide_report.delivered().count() >= 4 * narrow_report.delivered().count(),
        "k=4 must deliver >= 4x the paths of k=2: {} vs {}",
        wide_report.delivered().count(),
        narrow_report.delivered().count()
    );
}

#[test]
fn fat_tree_buckets_are_satisfiable() {
    let scenario = fat_tree(&config(4));
    let engine = SymNet::with_config(
        scenario.network.clone(),
        ExecConfig {
            max_hops: scenario.max_hops,
            ..ExecConfig::default()
        },
    );
    let report = engine.inject(scenario.inject_at, scenario.inject_port, &scenario.packet);
    let mut solver = Solver::default();
    for path in report.delivered() {
        assert!(
            solver.model(&path.state.path_condition()).is_some(),
            "delivered path {} must admit a concrete packet",
            path.id
        );
    }
}

#[test]
fn fat_tree_reports_are_thread_invariant() {
    let scenario = fat_tree(&config(4));
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        let engine = SymNet::with_config(
            scenario.network.clone(),
            ExecConfig {
                max_hops: scenario.max_hops,
                ..ExecConfig::default()
            }
            .with_threads(threads),
        );
        let report = engine.inject(scenario.inject_at, scenario.inject_port, &scenario.packet);
        let canonical = canonical_report_json_string(&report, &scenario.network);
        match &baseline {
            None => baseline = Some(canonical),
            Some(expected) => {
                assert_eq!(
                    &canonical, expected,
                    "canonical report at {threads} threads"
                )
            }
        }
    }
}
