//! End-to-end coverage of the differential fuzzing harness
//! (`symnet_testgen::fuzz`): a small clean campaign over every generator
//! family, seed-reproducibility of individual cases, and the canary — a
//! deliberately planted TTL double-decrement that the oracle *must* report
//! with a reproducible, minimized failure.

use symnet_suite::testgen::fuzz::{run_canary, run_case, run_fuzz, FuzzConfig};
use symnet_suite::testgen::generators::{GeneratorConfig, GeneratorKind};

fn small_config() -> FuzzConfig {
    FuzzConfig {
        seed: 0xD1FF_5EED,
        iters: 12, // two cases per generator family (six families)
        generator: GeneratorConfig {
            seed: 0, // replaced per-case
            size: 4,
            entries: 8,
        },
        max_mutations: 3,
    }
}

#[test]
fn small_campaign_is_clean_across_all_generators() {
    let report = run_fuzz(&small_config());
    assert_eq!(report.cases, 12);
    assert_eq!(
        report.per_generator.len(),
        GeneratorKind::ALL.len(),
        "campaign must rotate over every generator family: {:?}",
        report.per_generator
    );
    assert!(
        report.paths_checked > 0,
        "the campaign must replay at least one delivered path"
    );
    assert!(
        report.is_clean(),
        "correct models must never diverge from their replay: {:#?}",
        report.failures
    );
}

#[test]
fn campaigns_are_seed_deterministic() {
    let a = run_fuzz(&small_config());
    let b = run_fuzz(&small_config());
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.paths_checked, b.paths_checked);
    assert_eq!(a.mutations_applied, b.mutations_applied);
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn cases_are_seed_reproducible() {
    let config = small_config();
    for kind in GeneratorKind::ALL {
        let first = run_case(kind, 0x5EED_0001, &config);
        let second = run_case(kind, 0x5EED_0001, &config);
        assert_eq!(
            first.paths_checked,
            second.paths_checked,
            "{} must replay the same paths for the same case seed",
            kind.name()
        );
        assert_eq!(first.mutations_applied, second.mutations_applied);
        assert_eq!(first.failure.is_some(), second.failure.is_some());
    }
}

#[test]
fn canary_ttl_bug_is_detected() {
    let failure = run_canary().expect("the oracle must report the planted TTL double-decrement");
    assert!(
        failure.detail.contains("IpTtl"),
        "the failure must name the diverging field: {}",
        failure.detail
    );
    assert!(
        failure.mutations.is_empty() && failure.minimized.is_empty(),
        "the canary diverges with zero mutations, so the minimized set is empty"
    );
    // The report must render a reproduction line.
    let rendered = failure.to_string();
    assert!(rendered.contains("reproduce"), "{rendered}");
}

#[test]
fn canary_detection_is_reproducible() {
    let first = run_canary().expect("canary run 1");
    let second = run_canary().expect("canary run 2");
    assert_eq!(
        first.detail, second.detail,
        "the same planted bug must produce the same minimized report"
    );
}
