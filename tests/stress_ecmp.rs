//! Stress coverage over the `ecmp_fanout` scenario generator: a k-way ECMP
//! load-balancer in front of the department network. One symbolic injection at
//! the balancer forks into `k` disjoint `TcpSrc` buckets that each traverse
//! the full topology, so exploration work scales linearly in `k` — a natural
//! stress load for the work-stealing scheduler and (via one query per bucket)
//! a multi-query workload for the serving layer.

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::core::report::canonical_report_json_string;
use symnet_suite::models::scenarios::DepartmentConfig;
use symnet_suite::sefl::packet::symbolic_tcp_packet;
use symnet_suite::testgen::ecmp_fanout;

fn small() -> DepartmentConfig {
    DepartmentConfig {
        access_switches: 3,
        mac_entries: 30,
        routes: 12,
    }
}

#[test]
fn ecmp_path_counts_scale_linearly_in_ways() {
    let narrow = ecmp_fanout(2, small());
    let wide = ecmp_fanout(8, small());
    let narrow_report =
        SymNet::new(narrow.network.clone()).inject(narrow.balancer, 0, &symbolic_tcp_packet());
    let wide_report =
        SymNet::new(wide.network.clone()).inject(wide.balancer, 0, &symbolic_tcp_packet());
    assert!(narrow_report.delivered().count() >= 2);
    assert!(
        wide_report.path_count() >= 4 * narrow_report.path_count(),
        "8-way fan-out must explore ~4x the paths of 2-way: {} vs {}",
        wide_report.path_count(),
        narrow_report.path_count()
    );
}

#[test]
fn ecmp_reports_are_thread_invariant() {
    let fanout = ecmp_fanout(8, small());
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        let engine = SymNet::with_config(
            fanout.network.clone(),
            ExecConfig::default().with_threads(threads),
        );
        let report = engine.inject(fanout.balancer, 0, &symbolic_tcp_packet());
        let canonical = canonical_report_json_string(&report, &fanout.network);
        match &baseline {
            None => baseline = Some(canonical),
            Some(expected) => {
                assert_eq!(
                    &canonical, expected,
                    "canonical report at {threads} threads"
                )
            }
        }
    }
}

#[test]
fn ecmp_buckets_partition_the_source_port_space() {
    // Every delivered path's condition pins TcpSrc into its bucket; buckets
    // are disjoint, so no two distinct balancer outputs can admit the same
    // concrete source port. Spot-check by concretising each delivered path.
    use symnet_suite::solver::Solver;
    let fanout = ecmp_fanout(4, small());
    let engine = SymNet::new(fanout.network.clone());
    let report = engine.inject(fanout.balancer, 0, &symbolic_tcp_packet());
    let mut solver = Solver::default();
    let mut satisfiable = 0;
    for path in report.delivered() {
        if solver.model(&path.state.path_condition()).is_some() {
            satisfiable += 1;
        }
    }
    assert!(
        satisfiable >= fanout.ways,
        "each bucket must admit at least one concrete packet: {satisfiable}"
    );
}
