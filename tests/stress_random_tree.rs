//! Stress tests over the `symnet-parsers` random switch-tree generator:
//! fork-heavy synthetic topologies exercising the O(1) persistent-state fork
//! path (shared path conditions and loop histories), the incremental solver's
//! prefix cache, and the exact `max_paths` budget under contention.

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::parsers::random_switch_tree;
use symnet_suite::sefl::packet::symbolic_tcp_packet;
use symnet_suite::solver::SolverConfig;

/// A fork-heavy tree: the generator wires both up- and down-links, so
/// injecting at the root forks the packet multiplicatively down the tree and
/// the up/down cycles exercise loop detection.
fn tree() -> (
    symnet_suite::parsers::Topology,
    symnet_suite::core::ElementId,
) {
    let topo = random_switch_tree(7, 10, 30);
    let root = topo.elements["sw0"];
    (topo, root)
}

#[test]
fn random_tree_reports_are_thread_invariant() {
    let (topo, root) = tree();
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        let engine = SymNet::with_config(
            topo.network.clone(),
            ExecConfig::default().with_threads(threads),
        );
        let report = engine.inject(root, 0, &symbolic_tcp_packet());
        assert!(
            report.path_count() > 10,
            "expected a fork-heavy exploration"
        );
        assert!(
            report.loops().count() > 0,
            "up/down cycles must be detected"
        );
        let statuses: Vec<_> = report
            .paths
            .iter()
            .map(|p| (p.id, p.status.clone()))
            .collect();
        let states: Vec<_> = report.paths.iter().map(|p| p.state.clone()).collect();
        match &baseline {
            None => baseline = Some((statuses, states)),
            Some((expect_statuses, expect_states)) => {
                assert_eq!(&statuses, expect_statuses, "statuses at {threads} threads");
                assert_eq!(&states, expect_states, "states at {threads} threads");
            }
        }
    }
}

#[test]
fn random_tree_exercises_the_prefix_cache() {
    let (topo, root) = tree();
    let engine = SymNet::with_config(topo.network.clone(), ExecConfig::default().with_threads(1));
    let report = engine.inject(root, 0, &symbolic_tcp_packet());
    let stats = &report.solver_stats;
    assert!(
        stats.prefix_hits > 0,
        "forked siblings share prefixes, so the prefix cache must hit: {stats:?}"
    );
    assert!(stats.prefix_misses > 0, "fresh conjuncts must be analysed");
}

#[test]
fn identical_sibling_constraints_hit_the_memo_cache() {
    // Fork to two output ports that apply the *same* constraint: the engine
    // creates two distinct path-condition nodes with identical content
    // (distinct identities, so the node-keyed prefix cache cannot collapse
    // them), which the content-keyed per-worker memo answers on the second
    // sibling.
    use symnet_suite::core::network::Network;
    use symnet_suite::sefl::cond::Condition;
    use symnet_suite::sefl::fields::ip_ttl;
    use symnet_suite::sefl::{ElementProgram, Instruction};

    let mut net = Network::new();
    let mut program =
        ElementProgram::new("dup", 1, 2).with_any_input_code(Instruction::fork(vec![0, 1]));
    for port in 0..2 {
        program.set_output_code(
            port,
            Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
        );
    }
    let e = net.add_element(program);
    let engine = SymNet::with_config(net, ExecConfig::default().with_threads(1));
    let report = engine.inject(e, 0, &symbolic_tcp_packet());
    assert_eq!(report.delivered().count(), 2);
    let stats = &report.solver_stats;
    assert!(
        stats.memo_hits > 0,
        "the second sibling's identical conjunct must hit the memo: {stats:?}"
    );
}

#[test]
fn incremental_and_scratch_solvers_agree_on_the_tree() {
    let (topo, root) = tree();
    let mut reports = Vec::new();
    for incremental in [true, false] {
        let engine = SymNet::with_config(
            topo.network.clone(),
            ExecConfig {
                solver: SolverConfig {
                    incremental,
                    ..SolverConfig::default()
                },
                ..ExecConfig::default().with_threads(1)
            },
        );
        reports.push(engine.inject(root, 0, &symbolic_tcp_packet()));
    }
    let (inc, scratch) = (&reports[0], &reports[1]);
    assert_eq!(inc.path_count(), scratch.path_count());
    for (a, b) in inc.paths.iter().zip(scratch.paths.iter()) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.state, b.state);
    }
}

#[test]
fn max_paths_cap_is_exact_under_eight_threads() {
    // An 8×8 fork fan-out (64 delivered paths uncapped) truncated to a small
    // budget: the reservation scheme must report *exactly* the cap at every
    // thread count, with no per-worker overshoot.
    use symnet_suite::core::network::Network;
    use symnet_suite::sefl::{ElementProgram, Instruction};

    let cap = 10usize;
    for threads in [1usize, 8] {
        let mut net = Network::new();
        let a = net.add_element(
            ElementProgram::new("a", 1, 8).with_any_input_code(Instruction::fork((0..8).collect())),
        );
        let b = net.add_element(
            ElementProgram::new("b", 1, 8).with_any_input_code(Instruction::fork((0..8).collect())),
        );
        for port in 0..8 {
            net.add_link(a, port, b, 0);
        }
        let config = ExecConfig {
            max_paths: cap,
            ..ExecConfig::default().with_threads(threads)
        };
        let report = SymNet::with_config(net, config).inject(a, 0, &symbolic_tcp_packet());
        assert_eq!(
            report.path_count(),
            cap,
            "max_paths must be exact at {threads} threads"
        );
    }
}
