//! Interner behaviour under fuzz-chain load: a multi-scenario differential
//! fuzz chain churns the process-wide interning tables (formulas, intervals,
//! content ids) with thousands of short-lived terms. The eviction counters
//! must stay monotone (they are cumulative process-wide counters), and a
//! scenario re-run after heavy churn must produce a byte-identical canonical
//! report — hot entries surviving (or being re-created identically) is what
//! makes the memo layers transparent to results.

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::core::report::canonical_report_json_string;
use symnet_suite::solver::eviction_stats;
use symnet_suite::testgen::fuzz::{run_case, FuzzConfig};
use symnet_suite::testgen::generators::{fat_tree, GeneratorConfig, GeneratorKind};

fn fuzz_chain(seed: u64, cases: usize) -> usize {
    let config = FuzzConfig {
        seed,
        iters: cases,
        generator: GeneratorConfig {
            seed: 0,
            size: 4,
            entries: 8,
        },
        max_mutations: 2,
    };
    let mut paths = 0;
    for i in 0..cases {
        let kind = GeneratorKind::ALL[i % GeneratorKind::ALL.len()];
        let result = run_case(kind, seed.wrapping_add(i as u64), &config);
        assert!(
            result.failure.is_none(),
            "fuzz chain case {i} diverged: {:?}",
            result.failure
        );
        paths += result.paths_checked;
    }
    paths
}

#[test]
fn eviction_counters_are_monotone_across_fuzz_chains() {
    let before = eviction_stats();
    let paths = fuzz_chain(0x1273_4EED, 10);
    assert!(paths > 0, "the chain must exercise the solver");
    let after = eviction_stats();
    for (name, b, a) in [
        ("formulas", before.formulas, after.formulas),
        ("intervals", before.intervals, after.intervals),
        ("content", before.content, after.content),
    ] {
        assert!(
            a.evicted >= b.evicted,
            "{name}.evicted must be monotone: {} -> {}",
            b.evicted,
            a.evicted
        );
        assert!(
            a.sweeps >= b.sweeps,
            "{name}.sweeps must be monotone: {} -> {}",
            b.sweeps,
            a.sweeps
        );
    }
}

#[test]
fn hot_scenario_reports_survive_interner_churn() {
    let scenario = fat_tree(&GeneratorConfig {
        seed: 0x407_CA5E,
        size: 4,
        entries: 8,
    });
    let run = || {
        let engine = SymNet::with_config(
            scenario.network.clone(),
            ExecConfig {
                max_hops: scenario.max_hops,
                ..ExecConfig::default()
            },
        );
        let report = engine.inject(scenario.inject_at, scenario.inject_port, &scenario.packet);
        canonical_report_json_string(&report, &scenario.network)
    };
    let baseline = run();
    // Churn the process-wide interners with unrelated scenarios.
    fuzz_chain(0xC4_0211, 8);
    let after_churn = run();
    assert_eq!(
        baseline, after_churn,
        "interner churn must never change a scenario's canonical report"
    );
}
