//! Integration tests of the concurrent serving subsystem: snapshot isolation
//! across `ApplyDelta`, admission backpressure, and deadline cancellation —
//! all against paper-shaped topologies rather than toy elements.

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::core::network::Network;
use symnet_suite::core::report::canonical_report_json_string;
use symnet_suite::core::{ServerConfig, ServerError, SymNetServer};
use symnet_suite::models::delta::Delta;
use symnet_suite::models::scenarios::{delta_fanout, fanout_mac};
use symnet_suite::sefl::packet::symbolic_tcp_packet;

fn solo_canonical(network: &Network, element: symnet_suite::core::ElementId) -> String {
    let engine = SymNet::with_config(network.clone(), ExecConfig::default().with_threads(1));
    let report = engine.inject(element, 0, &symbolic_tcp_packet());
    canonical_report_json_string(&report, network)
}

/// (a) Two queries straddling an `ApplyDelta` see strictly pre- and post-delta
/// epochs, and both reports are byte-identical (canonical form) to solo runs
/// against the corresponding snapshot — at 1, 2 and 8 pool workers.
#[test]
fn queries_straddling_a_delta_see_strict_epochs_and_match_solo_runs() {
    let fanout = delta_fanout(3, 2);
    let delta = Delta::MacLearn {
        element: fanout.leaves[1],
        mac: fanout_mac(9, 0),
        vlan: None,
        port: 0,
    };
    // Compile the post-delta program once from the table state, exactly as a
    // server client would, and build the post-delta reference network.
    let mut tables = fanout.tables;
    let (element, program) = tables
        .apply_with(&delta, |element, program| (element, program))
        .expect("delta applies")
        .expect("delta changes its table");
    let mut post_network = fanout.network.clone();
    post_network.replace_element(element, program.clone());

    let solo_pre = solo_canonical(&fanout.network, fanout.access);
    let solo_post = solo_canonical(&post_network, fanout.access);
    assert_ne!(solo_pre, solo_post, "the delta must be observable");

    for workers in [1usize, 2, 8] {
        let server = SymNetServer::start(
            fanout.network.clone(),
            ServerConfig::default().with_workers(workers),
        );
        let handle = server.handle();
        // FIFO admission is the serialization point: the first query is
        // pinned strictly before the delta publishes, the second strictly
        // after.
        let pre = handle
            .verify(fanout.access, 0, symbolic_tcp_packet())
            .expect("pre-delta query admitted");
        let publish = handle
            .apply_delta(element, program.clone())
            .expect("delta admitted");
        let post = handle
            .verify(fanout.access, 0, symbolic_tcp_packet())
            .expect("post-delta query admitted");

        let pre = pre.wait().expect("pre-delta query completes");
        let new_epoch = publish.wait().expect("delta publishes");
        let post = post.wait().expect("post-delta query completes");

        assert!(pre.epoch < new_epoch, "pre-delta query pinned to old epoch");
        assert_eq!(post.epoch, new_epoch, "post-delta query sees new epoch");
        assert_eq!(
            canonical_report_json_string(&pre.report, &fanout.network),
            solo_pre,
            "pre-delta report diverged from solo at {workers} workers"
        );
        assert_eq!(
            canonical_report_json_string(&post.report, &post_network),
            solo_post,
            "post-delta report diverged from solo at {workers} workers"
        );

        let stats = handle.stats();
        assert_eq!(stats.epochs_published, 1);
        assert_eq!(stats.completed, 2);
        server.shutdown();
    }
}

/// A burst beyond the admission capacity is rejected with `Overloaded` at the
/// front door; every admitted query still completes normally.
#[test]
fn over_capacity_burst_is_rejected_with_overloaded() {
    let fanout = delta_fanout(8, 4);
    let server = SymNetServer::start(
        fanout.network.clone(),
        ServerConfig::default().with_workers(1).with_capacity(3),
    );
    let handle = server.handle();
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..10 {
        match handle.verify(fanout.access, 0, symbolic_tcp_packet()) {
            Ok(ticket) => admitted.push(ticket),
            Err(e) => {
                assert_eq!(e, ServerError::Overloaded);
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "a burst of 10 against capacity 3 must reject");
    assert!(
        !admitted.is_empty(),
        "the first submissions must be admitted"
    );
    for ticket in admitted {
        ticket.wait().expect("admitted queries complete");
    }
    let stats = handle.stats();
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.completed + stats.rejected, 10);
    server.shutdown();
}

/// (b) A query cancelled by its deadline resolves to `DeadlineExceeded` and
/// leaves the service fully re-usable: the pool is not poisoned and the next
/// query completes with a solo-identical report.
#[test]
fn deadline_cancelled_query_leaves_the_service_reusable() {
    let fanout = delta_fanout(4, 3);
    let solo = solo_canonical(&fanout.network, fanout.access);
    let server = SymNetServer::start(
        fanout.network.clone(),
        ServerConfig::default().with_workers(2),
    );
    let handle = server.handle();
    let doomed = handle
        .verify_with_deadline(
            fanout.access,
            0,
            symbolic_tcp_packet(),
            std::time::Duration::ZERO,
        )
        .expect("query admitted");
    match doomed.wait() {
        Err(ServerError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let after = handle
        .verify(fanout.access, 0, symbolic_tcp_packet())
        .expect("service stays usable")
        .wait()
        .expect("post-cancel query completes");
    assert_eq!(
        canonical_report_json_string(&after.report, &fanout.network),
        solo,
        "post-cancel report must match a solo run"
    );
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
    server.shutdown();
}

/// Mixed workload smoke: many concurrent queries interleaved with a delta
/// stream; every ticket resolves, every report is pinned to a valid epoch,
/// and the final snapshot reflects every published delta.
#[test]
fn mixed_query_and_delta_stream_resolves_every_ticket() {
    let fanout = delta_fanout(3, 2);
    let mut tables = fanout.tables;
    let server = SymNetServer::start(
        fanout.network.clone(),
        ServerConfig::default().with_workers(4),
    );
    let handle = server.handle();
    let stream = [
        Delta::MacLearn {
            element: fanout.leaves[1],
            mac: fanout_mac(9, 0),
            vlan: None,
            port: 0,
        },
        Delta::MacAge {
            element: fanout.leaves[2],
            mac: fanout_mac(2, 1),
            vlan: None,
        },
        Delta::MacLearn {
            element: fanout.root,
            mac: fanout_mac(9, 0),
            vlan: None,
            port: 1,
        },
    ];
    let mut queries = Vec::new();
    let mut published = Vec::new();
    for delta in &stream {
        queries.push(
            handle
                .verify(fanout.access, 0, symbolic_tcp_packet())
                .expect("query admitted"),
        );
        let (element, program) = tables
            .apply_with(delta, |element, program| (element, program))
            .expect("delta applies")
            .expect("delta changes its table");
        published.push(
            handle
                .apply_delta(element, program)
                .expect("delta admitted"),
        );
    }
    let epochs: Vec<u64> = published
        .into_iter()
        .map(|t| t.wait().expect("delta publishes"))
        .collect();
    assert_eq!(epochs, vec![1, 2, 3], "epochs publish in admission order");
    for (i, query) in queries.into_iter().enumerate() {
        let served = query.wait().expect("query completes");
        assert_eq!(
            served.epoch, i as u64,
            "query {i} pinned to the epoch preceding its paired delta"
        );
        assert!(served.report.path_count() > 0);
    }
    let (epoch, network) = handle
        .snapshot()
        .expect("snapshot admitted")
        .wait()
        .expect("snapshot serves");
    assert_eq!(epoch, 3);
    // The snapshot is the post-stream topology: a fresh solo run over it must
    // differ from the pre-stream solo run (the deltas were not no-ops).
    assert_ne!(
        solo_canonical(&network, fanout.access),
        solo_canonical(&fanout.network, fanout.access)
    );
    server.shutdown();
}
