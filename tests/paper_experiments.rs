//! Integration tests asserting the *shape* of every table and figure the
//! benchmark harness regenerates (E1–E10 in DESIGN.md): who wins, roughly by
//! how much, and where the qualitative findings appear. Run with small
//! workloads so the whole suite stays fast in CI.

use symnet_bench as bench;

/// E1 / Table 1: classic symbolic execution explodes with the options length.
#[test]
fn table1_path_explosion_shape() {
    let data = bench::table1_data(4, 100_000);
    let paths: Vec<usize> = data.iter().map(|(_, p, _, _)| *p).collect();
    // Strictly growing and super-linear growth between consecutive lengths.
    assert!(paths.windows(2).all(|w| w[1] > w[0]), "{paths:?}");
    assert!(
        paths[3] - paths[2] > paths[1] - paths[0],
        "growth must accelerate: {paths:?}"
    );
    // SymNet's SEFL model of the same code has a constant number of paths
    // (independent of the options length) — at most its branching factor.
    let program = symnet_models::tcp_options::asa_options_filter(
        "asa",
        &symnet_models::tcp_options::AsaOptionsConfig::default(),
    );
    assert!(program.max_branching() <= 4);
}

/// E2 / Figure 8: egress ≤ ingress ≤ basic, with the published path counts.
#[test]
fn fig8_switch_model_ordering() {
    let entries = 400;
    let basic = bench::measure_switch("basic", entries, 20);
    let ingress = bench::measure_switch("ingress", entries, 20);
    let egress = bench::measure_switch("egress", entries, 20);
    assert_eq!(basic.paths, entries);
    assert_eq!(ingress.paths, 20);
    assert_eq!(egress.paths, 20);
    assert_eq!(
        egress.constraint_atoms, entries,
        "egress constraints are linear"
    );
    assert!(ingress.constraint_atoms > egress.constraint_atoms);
    assert!(basic.constraint_atoms >= entries);
}

/// E3 / Table 2: the egress router model scales past the point where the
/// basic model becomes unusable, and both agree on reachability.
#[test]
fn table2_router_scaling_shape() {
    let fib = symnet_models::router::Fib::synthetic(2_000, 8);
    let egress = bench::measure_router("egress", &fib, 2_000);
    let basic_small = bench::measure_router("basic", &fib, 100);
    let egress_small = bench::measure_router("egress", &fib, 100);
    // Grouped model: one path per interface in use; basic: one per prefix.
    assert!(egress.paths <= 8);
    assert_eq!(basic_small.paths, 100);
    assert!(egress_small.paths <= 8);
    // The egress model on 20x more prefixes does not issue 20x the solver
    // work of the basic model on the small table (scalability crossover).
    // Solver calls are a deterministic proxy for runtime — the paper reports
    // >90% of time is solver time — where a wall-clock ratio would be flaky
    // on a loaded machine now that persistent-state forking has made the
    // basic model's small runs extremely fast.
    assert!(
        egress.solver_calls < basic_small.solver_calls * 20,
        "egress(2000): {} calls, basic(100): {} calls",
        egress.solver_calls,
        basic_small.solver_calls
    );
}

/// E4 / Table 3: SymNet completes the same reachability query as the HSA
/// baseline on the same backbone, within a small constant factor.
#[test]
fn table3_symnet_within_a_small_factor_of_hsa() {
    let report = bench::table3(4, 200);
    assert_eq!(report.rows.len(), 2);
    // Both tools find paths.
    for row in &report.rows {
        let paths: usize = row.cells[3].parse().unwrap();
        assert!(paths > 0, "{row:?}");
    }
}

/// E5 / Table 4: the SEFL model proves the option properties the paper lists.
#[test]
fn table4_symnet_column_is_correct() {
    let report = bench::table4(2);
    let text = report.render();
    assert!(
        text.contains("yes (correct)"),
        "timestamp must be allowed:\n{text}"
    );
    assert!(
        text.contains("yes (always)"),
        "multipath must be stripped:\n{text}"
    );
}

/// E6 / Table 5: capability matrix.
#[test]
fn table5_capability_matrix() {
    let report = bench::table5();
    assert_eq!(report.rows.len(), 13);
    let text = report.render();
    assert!(text.contains("Memory correctness"));
    assert!(text.contains("Dynamic tunneling"));
}

/// E9 / §8.3: automated testing flags exactly the buggy models.
#[test]
fn sec83_bug_catalogue() {
    let report = bench::sec83();
    let text = report.render();
    for line in text.lines() {
        if line.contains("(correct)") {
            assert!(
                line.trim_end().ends_with('0'),
                "correct models must be clean: {line}"
            );
        }
        if line.contains("buggy") {
            assert!(
                !line.trim_end().ends_with('0'),
                "buggy models must be caught: {line}"
            );
        }
    }
}

/// E7 / §8.4 and E8 / §8.5 smoke-run through the report generators.
#[test]
fn sec84_and_sec85_reports_generate() {
    let sec84 = bench::sec84();
    let text = sec84.render();
    assert!(text.contains("MTU"));
    assert!(text.contains("expected 0"));
    let sec85 = bench::sec85(4, 200, 20);
    let text = sec85.render();
    assert!(text.contains("all via ASA: true"));
    assert!(text.contains("MPTCP stripped: true"));
    assert!(text.contains("bypassing the ASA (true)"));
    assert!(
        text.contains("Solver cache"),
        "sec85 must surface the solver cache counters"
    );
}

/// E8 / §8.5: the incremental solver's prefix cache must actually be hit on
/// the department-network scenario (paths forked from shared prefixes
/// dominate this topology).
#[test]
fn department_scenario_hits_the_prefix_cache() {
    use symnet_suite::core::engine::{ExecConfig, SymNet};
    use symnet_suite::models::scenarios::{department, DepartmentConfig};
    use symnet_suite::models::tcp_options::symbolic_options_metadata;
    use symnet_suite::sefl::packet::symbolic_tcp_packet;
    use symnet_suite::sefl::Instruction;

    let (net, topo) = department(DepartmentConfig {
        access_switches: 4,
        mac_entries: 200,
        routes: 20,
    });
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );
    let outbound = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    let report = engine.inject(topo.office_switch, 0, &outbound);
    let stats = &report.solver_stats;
    assert!(
        stats.prefix_hits > 0,
        "shared path-condition prefixes must be reused: {stats:?}"
    );
    assert!(stats.prefix_misses > 0, "fresh conjuncts must be analysed");
}
