//! Degradation and identity properties of the persistent solver cache
//! (`symnet_solver::cache`).
//!
//! Every corruption the store can meet — a torn tail from a crashed writer, a
//! bit-flipped record, a log written under a different `SolverConfig`, a
//! directory locked by a second live process — must degrade to *fewer warm
//! hits*, never to a wrong verdict. The final tests close the loop at the
//! engine level: reports rendered from a warm-disk cache must be
//! byte-identical to cold runs at 1, 2 and 8 workers (the same invariant
//! `tests/determinism.rs` and `tests/memo_reinject.rs` prove for the
//! in-process memo layers).
//!
//! Kept in its own integration binary: the cache is process-global, and the
//! counter assertions here must not race tests that assume it is off. Within
//! the binary, every test serializes on [`gate`] and uses its own temp
//! directory.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;
use symnet_store::LogStore;
use symnet_suite::core::engine::{ExecConfig, ExecutionReport, SymNet};
use symnet_suite::core::report::report_to_json_string;
use symnet_suite::models::scenarios::{department, DepartmentConfig};
use symnet_suite::sefl::packet::symbolic_l3_tcp_packet;
use symnet_suite::solver::solve::reset_process_memos;
use symnet_suite::solver::{
    cache, CmpOp, Formula, IntervalSet, PathCond, Solver, SolverConfig, SymVar, Term,
};

/// The cache is process-global; tests touching it serialize on this.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fresh per-test cache directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "symnet-persistent-cache-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn log_path(dir: &std::path::Path) -> PathBuf {
    dir.join("solver-cache.log")
}

/// One step of a random conjunct chain (the same op vocabulary as
/// `crates/solver/tests/proptests.rs`).
type ChainOp = (usize, u64, u64, u64);

fn conjunct(vars: &[SymVar], (kind, a, b, value): &ChainOp) -> Formula {
    let (va, vb) = (vars[*a as usize], vars[*b as usize]);
    match kind {
        0 => Formula::eq_const(va, *value),
        1 => Formula::ne_const(va, *value),
        2 => Formula::cmp_const(CmpOp::Le, va, *value),
        3 => Formula::cmp_const(CmpOp::Ge, va, *value),
        4 => Formula::cmp(
            CmpOp::Eq,
            Term::var(va),
            Term::var(vb).plus((*value as i128) % 8),
        ),
        5 => Formula::cmp(CmpOp::Lt, Term::var(va), Term::var(vb)),
        6 => Formula::prefix_match(va, *value, (*value % 7) as u8),
        _ => Formula::or(vec![
            Formula::eq_const(va, *value),
            Formula::cmp_const(CmpOp::Ge, vb, *value),
        ]),
    }
}

/// Runs the chain through `solver`, recording the verdict and every
/// per-variable projection at every prefix.
#[allow(clippy::type_complexity)]
fn run_chain(solver: &mut Solver, ops: &[ChainOp]) -> Vec<(bool, bool, Vec<Option<IntervalSet>>)> {
    let vars: Vec<SymVar> = (0..3).map(|i| SymVar::new(i, 6)).collect();
    let mut cond = PathCond::empty();
    let mut out = Vec::new();
    for op in ops {
        cond = cond.push(conjunct(&vars, op));
        let verdict = solver.check_path(&cond);
        let projections = vars
            .iter()
            .map(|v| solver.feasible_values_path(&cond, *v))
            .collect();
        out.push((verdict.is_sat(), verdict.is_unsat(), projections));
    }
    out
}

/// The ground truth: a fresh solver with both the incremental procedure and
/// the persistent layer disabled, re-solving every materialised prefix.
fn scratch_chain(ops: &[ChainOp]) -> Vec<(bool, bool, Vec<Option<IntervalSet>>)> {
    let mut scratch = Solver::with_config(SolverConfig {
        incremental: false,
        persistent: false,
        ..SolverConfig::default()
    });
    run_chain(&mut scratch, ops)
}

/// A fixed chain used by the corruption tests — long enough to spread records
/// across the log, mixing Sat and Unsat prefixes.
fn fixed_ops() -> Vec<ChainOp> {
    vec![
        (3, 0, 1, 9),
        (2, 0, 2, 40),
        (4, 1, 0, 3),
        (7, 2, 0, 33),
        (5, 2, 1, 0),
        (0, 1, 1, 14),
    ]
}

/// Populates `dir` with the verdicts/projections of `ops`, flushes, and shuts
/// the cache down, leaving only the on-disk log behind.
fn populate(dir: &std::path::Path, ops: &[ChainOp]) {
    // Sibling tests may have run the same chain already; clear the content
    // memos so the run reaches the persistent layer instead of stopping at a
    // memo hit (the persistent lookup sits behind the memo miss path).
    reset_process_memos();
    assert!(cache::configure(dir).unwrap(), "populate: store is locked");
    let mut solver = Solver::default();
    run_chain(&mut solver, ops);
    cache::flush();
    cache::deactivate();
    reset_process_memos();
}

/// Reopens `dir` warm, runs the chain on a fresh solver, shuts down, and
/// returns the observed verdicts. The process memos are cleared first so every
/// answer comes from disk or the real decision procedure, never a memo.
fn rerun_warm(
    dir: &std::path::Path,
    ops: &[ChainOp],
) -> Vec<(bool, bool, Vec<Option<IntervalSet>>)> {
    reset_process_memos();
    assert!(cache::configure(dir).unwrap(), "rerun: store is locked");
    let mut solver = Solver::default();
    let got = run_chain(&mut solver, ops);
    cache::deactivate();
    got
}

#[test]
fn torn_tail_degrades_to_cold_never_wrong() {
    let _gate = gate();
    let dir = temp_dir("torn-tail");
    let ops = fixed_ops();
    populate(&dir, &ops);

    // Crash mid-append: the last frame on disk is incomplete.
    let log = log_path(&dir);
    let len = std::fs::metadata(&log).unwrap().len();
    assert!(len > 16, "populated log is implausibly small: {len} bytes");
    let file = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    // The store truncates the torn tail on open; surviving records replay and
    // the dropped ones are re-solved — verdict-for-verdict identical to a
    // from-scratch solver either way.
    cache::reset_counters();
    assert_eq!(rerun_warm(&dir, &ops), scratch_chain(&ops));
    let c = cache::counters();
    assert!(
        c.verdict_hits + c.verdict_misses > 0,
        "the persistent layer was never consulted: {c:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_record_degrades_to_cold_never_wrong() {
    let _gate = gate();
    let dir = temp_dir("bit-flip");
    let ops = fixed_ops();
    populate(&dir, &ops);

    // Flip one byte in the middle of the log: the CRC of that frame no longer
    // matches, so the store drops it (and the suffix behind it) on open.
    let log = log_path(&dir);
    let before = LogStore::open(&log).unwrap().take_records().len();
    let mut bytes = std::fs::read(&log).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&log, &bytes).unwrap();
    let after = LogStore::open(&log).unwrap().take_records().len();
    assert!(
        after < before,
        "the corrupt frame and its suffix must be dropped ({before} -> {after} records)"
    );

    // The warm rerun replays the surviving prefix, re-solves (and re-stores)
    // the dropped suffix, and agrees with from-scratch either way.
    assert_eq!(rerun_warm(&dir, &ops), scratch_chain(&ops));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_solver_config_fingerprint_never_matches() {
    let _gate = gate();
    let dir = temp_dir("stale-config");
    let ops = fixed_ops();
    populate(&dir, &ops);

    // A solver whose verdict-affecting knobs differ must never see the old
    // records: its config fingerprint is mixed into every key.
    let stale = SolverConfig {
        samples_per_var: 3,
        ..SolverConfig::default()
    };
    reset_process_memos();
    assert!(cache::configure(&dir).unwrap());
    cache::reset_counters();
    let mut solver = Solver::with_config(stale);
    let got = run_chain(&mut solver, &ops);
    let c = cache::counters();
    assert_eq!(
        c.verdict_hits + c.projection_hits,
        0,
        "records keyed by a different SolverConfig must not match: {c:?}"
    );
    assert!(c.verdict_misses > 0, "the store was never consulted: {c:?}");

    // ... and its verdicts match its own from-scratch baseline.
    let mut scratch = Solver::with_config(SolverConfig {
        incremental: false,
        persistent: false,
        ..stale
    });
    assert_eq!(got, run_chain(&mut scratch, &ops));

    // The original config still hits.
    reset_process_memos();
    cache::reset_counters();
    let mut original = Solver::default();
    run_chain(&mut original, &ops);
    assert!(
        cache::counters().verdict_hits > 0,
        "the original config's records are still warm: {:?}",
        cache::counters()
    );
    cache::deactivate();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_locked_by_live_process_degrades_to_cold() {
    let _gate = gate();
    let dir = temp_dir("locked");
    let ops = fixed_ops();

    // Hold the writer lock exactly the way a second live process would.
    let holder = LogStore::open(&log_path(&dir)).unwrap();
    assert!(
        !cache::configure(&dir).unwrap(),
        "a locked store must refuse activation, not error"
    );
    assert!(!cache::active());

    // Solving still works — cold — and touches no cache counters.
    cache::reset_counters();
    let mut solver = Solver::default();
    let got = run_chain(&mut solver, &ops);
    assert_eq!(got, scratch_chain(&ops));
    assert_eq!(cache::counters(), cache::CacheCounters::default());

    // Once the other writer exits, the same directory activates normally.
    drop(holder);
    assert!(cache::configure(&dir).unwrap());
    cache::deactivate();
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// Warm-disk answers are the from-scratch answers: populate a cache from a
    /// random conjunct chain, clear every in-process memo, reopen the log, and
    /// re-run — the replayed verdicts and projections must equal those of a
    /// solver with `incremental = false` and no cache at all.
    #[test]
    fn warm_disk_verdicts_match_from_scratch(
        ops in prop::collection::vec((0usize..8, 0u64..3, 0u64..3, 0u64..64), 1..8),
    ) {
        let _gate = gate();
        let dir = temp_dir("prop");
        populate(&dir, &ops);
        let warm = rerun_warm(&dir, &ops);
        prop_assert_eq!(warm, scratch_chain(&ops));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Engine-level closure of the loop: one injection rendered with timing
/// zeroed, exactly like `tests/determinism.rs`.
fn canonical(threads: usize) -> (String, String) {
    // A department config no other test uses, so memo state from sibling
    // binaries cannot leak in (each binary is its own process anyway).
    let (net, topo) = department(DepartmentConfig {
        access_switches: 5,
        mac_entries: 150,
        routes: 17,
    });
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default().with_threads(threads)
        },
    );
    let mut report: ExecutionReport = engine.inject(topo.exit_router, 0, &symbolic_l3_tcp_packet());
    report.wall_time = Duration::ZERO;
    report.solver_stats.time_in_solver = Duration::ZERO;
    let paper_json = report_to_json_string(&report, engine.network());
    let serde_json = serde_json::to_string(&report).expect("report serializes");
    (paper_json, serde_json)
}

#[test]
fn warm_disk_reports_are_byte_identical_across_worker_counts() {
    let _gate = gate();
    let dir = temp_dir("reports");

    // Cold baseline: no cache anywhere.
    cache::deactivate();
    reset_process_memos();
    let baseline = canonical(1);
    assert!(!baseline.0.is_empty() && !baseline.1.is_empty());

    // Cache-populating runs must not change a byte at any worker count. The
    // memos warmed by the baseline are cleared so the runs actually reach the
    // persistent layer.
    assert!(cache::configure(&dir).unwrap());
    reset_process_memos();
    cache::reset_counters();
    for threads in [1usize, 2, 8] {
        assert_eq!(
            canonical(threads),
            baseline,
            "cache-populating run diverged at {threads} workers"
        );
    }
    assert!(
        cache::counters().verdict_stores > 0,
        "the runs never populated the store: {:?}",
        cache::counters()
    );
    cache::flush();
    cache::deactivate();

    // Warm-disk runs: memos cleared, every verdict replayed from the log.
    // Still byte-identical, and — the headline acceptance criterion — with
    // zero persisted verdict misses.
    reset_process_memos();
    assert!(cache::configure(&dir).unwrap());
    cache::reset_counters();
    for threads in [1usize, 2, 8] {
        assert_eq!(
            canonical(threads),
            baseline,
            "warm-disk run diverged at {threads} workers"
        );
        reset_process_memos();
    }
    let c = cache::counters();
    assert!(c.verdict_hits > 0, "warm runs never hit the store: {c:?}");
    assert_eq!(
        c.verdict_misses, 0,
        "a warm-disk re-run of an identical scenario must miss nothing: {c:?}"
    );
    cache::deactivate();
    let _ = std::fs::remove_dir_all(&dir);
}
