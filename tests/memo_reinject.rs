//! Re-injection hits the process-wide content memos.
//!
//! The solver's global memo tables are keyed on interned *content* ids, not
//! node identities (see `crates/solver/src/intern.rs`), so injecting the same
//! scenario into a **freshly built** `SymNet` — new network, new engine, new
//! path-condition nodes — must be answered from the memos without re-solving
//! a single prefix. This is the headline property of the interning layer: a
//! verification service that re-checks an unchanged network pays solver time
//! only once per process.
//!
//! Kept in its own integration binary: the asserts count *process-global*
//! memo traffic for one scenario, so no other test may run the same scenario
//! in this process first.

use std::time::Duration;
use symnet_suite::core::engine::{ExecConfig, ExecutionReport, SymNet};
use symnet_suite::core::report::report_to_json_string;
use symnet_suite::models::scenarios::{department, DepartmentConfig};
use symnet_suite::models::tcp_options::symbolic_options_metadata;
use symnet_suite::sefl::packet::symbolic_tcp_packet;
use symnet_suite::sefl::Instruction;

/// A department config no other test uses, so this binary's first run is the
/// first time this content enters the process-wide interner.
fn scenario() -> DepartmentConfig {
    DepartmentConfig {
        access_switches: 4,
        mac_entries: 250,
        routes: 23,
    }
}

fn run() -> (ExecutionReport, String, String) {
    let (net, topo) = department(scenario());
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default().with_threads(1)
        },
    );
    let packet = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    let mut report = engine.inject(topo.office_switch, 0, &packet);
    report.wall_time = Duration::ZERO;
    report.solver_stats.time_in_solver = Duration::ZERO;
    let paper_json = report_to_json_string(&report, engine.network());
    let serde_json = serde_json::to_string(&report).expect("report serializes");
    (report, paper_json, serde_json)
}

#[test]
fn reinjection_into_a_fresh_symnet_is_answered_from_the_content_memo() {
    let (first, first_paper, first_serde) = run();
    assert!(first.path_count() > 0, "scenario produced no paths");
    assert!(
        first.solver_stats.content_misses > 0,
        "cold run must populate the content memo: {:?}",
        first.solver_stats
    );

    // Everything is rebuilt from scratch; only the process-wide interner and
    // memos persist.
    let (second, second_paper, second_serde) = run();
    assert_eq!(
        second.solver_stats.content_misses, 0,
        "re-injected scenario re-solved a prefix instead of hitting the \
         content memo: {:?}",
        second.solver_stats
    );
    assert!(
        second.solver_stats.content_hits > 0,
        "re-injected scenario never consulted the content memo: {:?}",
        second.solver_stats
    );

    // Warm-memo runs must not change a single report byte (the memo-skipping
    // counters are excluded from serialization; everything else replays).
    assert_eq!(
        first_paper, second_paper,
        "paper JSON changed on re-injection"
    );
    assert_eq!(
        first_serde, second_serde,
        "serde JSON changed on re-injection"
    );
}
