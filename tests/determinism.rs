//! Engine determinism across thread counts: on every scenario topology of
//! `crates/models/src/scenarios.rs` — plus the fork-heavy random switch tree,
//! the workload that actually exercises stealing and local-deque overflow in
//! the work-stealing scheduler — running `SymNet::inject` with 1, 2 and 8
//! workers must produce byte-identical serialized `ExecutionReport`s: both
//! the paper-style JSON rendering of `report.rs` and the serde serialization
//! of the report struct itself. Wall-clock fields (`wall_time`,
//! `solver_stats.time_in_solver`) are zeroed before comparing: they are the
//! only physically nondeterministic part of a report (the work-stealing
//! counters in `ExecutionReport::sched` are scheduling-dependent too, but
//! they are `#[serde(skip)]`ed and never serialized in the first place —
//! these comparisons prove exactly that).

use std::time::Duration;
use symnet_suite::core::engine::{ExecConfig, ExecutionReport, SymNet};
use symnet_suite::core::network::{ElementId, Network};
use symnet_suite::core::report::report_to_json_string;
use symnet_suite::models::scenarios::{
    department, split_tcp, stanford_backbone, tunnel_chain, DepartmentConfig, SplitTcpConfig,
};
use symnet_suite::models::tcp_options::symbolic_options_metadata;
use symnet_suite::sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_suite::sefl::Instruction;

/// Runs one injection at a given worker count and renders both serializations
/// with timing fields zeroed.
fn canonical(
    net: &Network,
    config: &ExecConfig,
    threads: usize,
    inject_at: ElementId,
    packet: &Instruction,
) -> (String, String) {
    let engine = SymNet::with_config(net.clone(), config.clone().with_threads(threads));
    let mut report: ExecutionReport = engine.inject(inject_at, 0, packet);
    report.wall_time = Duration::ZERO;
    report.solver_stats.time_in_solver = Duration::ZERO;
    let paper_json = report_to_json_string(&report, engine.network());
    let serde_json = serde_json::to_string(&report).expect("report serializes");
    (paper_json, serde_json)
}

/// Asserts byte-identical reports at 1, 2 and 8 workers, then re-runs the
/// 1-worker baseline once more: by then the process-wide content-keyed
/// solver memos are warm, so the re-run answers from the interner layer and
/// must still serialize byte-identically (the memo-hit counter-replay
/// invariant — see DESIGN.md "Interning & memory layout").
fn assert_thread_invariant(
    name: &str,
    net: &Network,
    config: &ExecConfig,
    inject_at: ElementId,
    packet: &Instruction,
) {
    let baseline = canonical(net, config, 1, inject_at, packet);
    assert!(
        !baseline.0.is_empty() && !baseline.1.is_empty(),
        "{name}: empty serialization"
    );
    for threads in [2usize, 8] {
        let got = canonical(net, config, threads, inject_at, packet);
        assert_eq!(
            got.0, baseline.0,
            "{name}: paper JSON differs between 1 and {threads} threads"
        );
        assert_eq!(
            got.1, baseline.1,
            "{name}: serde JSON differs between 1 and {threads} threads"
        );
    }
    let warm = canonical(net, config, 1, inject_at, packet);
    assert_eq!(
        warm, baseline,
        "{name}: warm re-injection (content memos populated) differs from the cold run"
    );
}

#[test]
fn tunnel_chain_reports_are_thread_invariant() {
    let (net, a, _b) = tunnel_chain();
    assert_thread_invariant(
        "tunnel_chain",
        &net,
        &ExecConfig::default(),
        a,
        &symbolic_tcp_packet(),
    );
}

#[test]
fn split_tcp_reports_are_thread_invariant() {
    // Every documented §8.4 incident configuration.
    let configs = [
        ("default", SplitTcpConfig::default()),
        (
            "tunnel_to_proxy",
            SplitTcpConfig {
                tunnel_to_proxy: true,
                ..Default::default()
            },
        ),
        (
            "vlan_stripping_bug",
            SplitTcpConfig {
                vlan_stripping_bug: true,
                ..Default::default()
            },
        ),
        (
            "dhcp_security_check",
            SplitTcpConfig {
                dhcp_security_check: true,
                ..Default::default()
            },
        ),
        (
            "mirror_at_r2",
            SplitTcpConfig {
                mirror_at_r2: true,
                ..Default::default()
            },
        ),
    ];
    for (name, config) in configs {
        let (net, topo) = split_tcp(config);
        assert_thread_invariant(
            &format!("split_tcp/{name}"),
            &net,
            &ExecConfig::default(),
            topo.client,
            &symbolic_tcp_packet(),
        );
    }
}

#[test]
fn department_reports_are_thread_invariant() {
    let (net, topo) = department(DepartmentConfig {
        access_switches: 3,
        mac_entries: 120,
        routes: 20,
    });
    let config = ExecConfig {
        max_hops: 32,
        ..ExecConfig::default()
    };
    // Outbound: office to Internet with symbolic TCP options (the §8.5 run).
    let outbound = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    assert_thread_invariant(
        "department/outbound",
        &net,
        &config,
        topo.office_switch,
        &outbound,
    );
    // Inbound scan from the exit router.
    assert_thread_invariant(
        "department/inbound",
        &net,
        &config,
        topo.exit_router,
        &symbolic_l3_tcp_packet(),
    );
}

#[test]
fn execution_reports_roundtrip_through_serde() {
    // The derived Serialize/Deserialize impls must agree: parsing a
    // serialized report and re-serializing it reproduces the exact bytes.
    let (net, a, _b) = tunnel_chain();
    let engine = SymNet::with_config(net, ExecConfig::default());
    let mut report = engine.inject(a, 0, &symbolic_tcp_packet());
    report.wall_time = Duration::ZERO;
    report.solver_stats.time_in_solver = Duration::ZERO;
    let text = serde_json::to_string(&report).expect("serializes");
    let parsed: ExecutionReport = serde_json::from_str(&text).expect("parses back");
    let text2 = serde_json::to_string(&parsed).expect("re-serializes");
    assert_eq!(text, text2);
    assert_eq!(parsed.path_count(), report.path_count());
    assert_eq!(parsed.injected, report.injected);
}

#[test]
fn stanford_backbone_reports_are_thread_invariant() {
    let backbone = stanford_backbone(4, 60);
    assert_thread_invariant(
        "stanford_backbone",
        &backbone.network,
        &ExecConfig::default(),
        backbone.access,
        &symbolic_l3_tcp_packet(),
    );
}

#[test]
fn random_tree_reports_are_thread_invariant() {
    // The random switch tree is the fork-heaviest topology in the repo:
    // every egress switch forks per output-port group and the bidirectional
    // links re-enqueue paths until loop detection fires. At 8 workers this
    // drives real steals (and, on the bushier trees, local-deque overflow),
    // so byte-identical reports here are the determinism proof for the
    // work-stealing scheduler specifically.
    for (seed, switches, macs) in [(42u64, 12usize, 40usize), (7, 20, 24)] {
        let topo = symnet_suite::parsers::random_switch_tree(seed, switches, macs);
        assert_thread_invariant(
            &format!("random_tree/seed{seed}"),
            &topo.network,
            &ExecConfig::default(),
            topo.elements["sw0"],
            &symbolic_tcp_packet(),
        );
    }
}

#[test]
fn reports_are_invariant_under_persistent_cache() {
    // The persistent solver cache (`symnet_solver::cache`) must be transparent
    // to every report byte: runs that populate the disk store and runs that
    // replay verdicts from it serialize identically to the cache-less baseline
    // at every worker count. Only byte-identity is asserted here, so sibling
    // tests running concurrently in this binary — whose solver traffic flows
    // through the cache while it is active — cannot perturb the outcome;
    // counter-sensitive assertions (hit/miss/store counts) live in
    // `tests/persistent_cache.rs`, which owns its own process.
    use symnet_suite::solver::cache;
    let backbone = stanford_backbone(3, 48);
    let config = ExecConfig::default();
    let run = |threads| {
        canonical(
            &backbone.network,
            &config,
            threads,
            backbone.access,
            &symbolic_l3_tcp_packet(),
        )
    };
    let baseline = run(1);
    let dir = std::env::temp_dir().join(format!("symnet-determinism-cache-{}", std::process::id()));
    assert!(
        cache::configure(&dir).expect("cache dir opens"),
        "per-process temp dir cannot be locked by another process"
    );
    symnet_suite::solver::solve::reset_process_memos();
    for threads in [1usize, 2, 8] {
        assert_eq!(
            run(threads),
            baseline,
            "cache-populating run diverged at {threads} workers"
        );
    }
    cache::flush();
    cache::deactivate();
    // Reopen warm from disk with the in-process memos cleared: every verdict
    // now replays from the log, and still not a byte may change.
    symnet_suite::solver::solve::reset_process_memos();
    assert!(cache::configure(&dir).expect("cache dir reopens"));
    for threads in [1usize, 2, 8] {
        assert_eq!(
            run(threads),
            baseline,
            "warm-disk run diverged at {threads} workers"
        );
    }
    cache::deactivate();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn max_paths_cap_is_exact_under_work_stealing() {
    // Which paths survive a truncated run is scheduling-dependent, but the
    // *count* must be exact at every worker count: each reported path
    // reserves a slot from the shared atomic budget before it is recorded.
    let topo = symnet_suite::parsers::random_switch_tree(42, 12, 40);
    for threads in [1usize, 2, 8] {
        let config = ExecConfig {
            max_paths: 25,
            ..ExecConfig::default().with_threads(threads)
        };
        let engine = SymNet::with_config(topo.network.clone(), config);
        let report = engine.inject(topo.elements["sw0"], 0, &symbolic_tcp_packet());
        assert_eq!(
            report.path_count(),
            25,
            "cap must be exact at {threads} threads"
        );
    }
}

#[test]
fn service_delta_stream_is_thread_invariant() {
    // Resident-service mode: the same delta stream, replayed at 1, 2 and 8
    // workers, must yield byte-identical canonical reports after every
    // re-verification. The incremental path merges kept results with
    // re-explored subtrees, so this proves the merge + EmitKey sort erases
    // scheduling order exactly like a from-scratch run.
    use symnet_suite::core::report::canonical_report_json_string;
    use symnet_suite::core::VerifyService;
    use symnet_suite::models::delta::Delta;
    use symnet_suite::models::scenarios::{delta_fanout, fanout_mac};

    let run = |threads: usize| -> Vec<String> {
        let fanout = delta_fanout(3, 2);
        let mut tables = fanout.tables;
        let mut service =
            VerifyService::new(fanout.network, ExecConfig::default().with_threads(threads));
        let q = service.add_query("fanout", fanout.access, 0, symbolic_tcp_packet());
        let stream = [
            Delta::MacLearn {
                element: fanout.leaves[1],
                mac: fanout_mac(9, 0),
                vlan: None,
                port: 0,
            },
            Delta::MacAge {
                element: fanout.leaves[2],
                mac: fanout_mac(2, 1),
                vlan: None,
            },
            Delta::MacLearn {
                element: fanout.root,
                mac: fanout_mac(9, 0),
                vlan: None,
                port: 1,
            },
        ];
        let mut reports = vec![canonical_report_json_string(
            &service.verify(q).expect("initial verify").report,
            service.network(),
        )];
        for delta in &stream {
            tables
                .apply(&mut service, delta)
                .expect("delta applies")
                .expect("delta changes its table");
            reports.push(canonical_report_json_string(
                &service.verify(q).expect("re-verify").report,
                service.network(),
            ));
        }
        reports
    };

    let baseline = run(1);
    assert_eq!(baseline.len(), 4);
    for threads in [2usize, 8] {
        assert_eq!(
            run(threads),
            baseline,
            "service delta stream diverged at {threads} workers"
        );
    }
}

#[test]
fn service_max_paths_cap_is_exact_across_reverifications() {
    // A capped standing query must report exactly `max_paths` paths after
    // every re-verification: the kept set plus the re-explored set share one
    // budget, so the merge can neither exceed nor undershoot the cap while
    // enough paths exist.
    use symnet_suite::core::VerifyService;
    use symnet_suite::models::delta::Delta;
    use symnet_suite::models::scenarios::{delta_fanout, fanout_mac};

    for threads in [1usize, 2, 8] {
        let fanout = delta_fanout(4, 3);
        let mut tables = fanout.tables;
        let config = ExecConfig {
            max_paths: 8,
            ..ExecConfig::default().with_threads(threads)
        };
        let mut service = VerifyService::new(fanout.network, config);
        let q = service.add_query("capped", fanout.access, 0, symbolic_tcp_packet());
        assert_eq!(service.verify(q).unwrap().report.path_count(), 8);
        for (round, delta) in [
            Delta::MacLearn {
                element: fanout.leaves[0],
                mac: fanout_mac(9, 1),
                vlan: None,
                port: 2,
            },
            Delta::MacAge {
                element: fanout.leaves[3],
                mac: fanout_mac(3, 0),
                vlan: None,
            },
        ]
        .iter()
        .enumerate()
        {
            tables
                .apply(&mut service, delta)
                .expect("delta applies")
                .expect("delta changes its table");
            assert_eq!(
                service.verify(q).unwrap().report.path_count(),
                8,
                "cap must stay exact at {threads} threads, round {round}"
            );
        }
    }
}

#[test]
fn served_concurrent_reports_are_byte_identical_to_solo_runs() {
    // Serving-layer determinism: the same query, executed concurrently with
    // five siblings on a shared pool of 1, 2 or 8 workers, must produce a
    // canonical report byte-identical to a solo single-threaded
    // `SymNet::inject` over the same snapshot. Per-query lineage tags and the
    // EmitKey sort erase both intra-query scheduling and cross-query
    // interleaving.
    use symnet_suite::core::report::canonical_report_json_string;
    use symnet_suite::core::{ServerConfig, SymNetServer};
    use symnet_suite::models::scenarios::delta_fanout;

    let fanout = delta_fanout(3, 2);
    let solo = {
        let engine = SymNet::with_config(
            fanout.network.clone(),
            ExecConfig::default().with_threads(1),
        );
        canonical_report_json_string(
            &engine.inject(fanout.access, 0, &symbolic_tcp_packet()),
            &fanout.network,
        )
    };
    for workers in [1usize, 2, 8] {
        let server = SymNetServer::start(
            fanout.network.clone(),
            ServerConfig::default().with_workers(workers),
        );
        let handle = server.handle();
        let tickets: Vec<_> = (0..6)
            .map(|_| {
                handle
                    .verify(fanout.access, 0, symbolic_tcp_packet())
                    .expect("query admitted")
            })
            .collect();
        for ticket in tickets {
            let served = ticket.wait().expect("query completes");
            assert_eq!(
                canonical_report_json_string(&served.report, &fanout.network),
                solo,
                "served report diverged from solo at {workers} workers"
            );
        }
        server.shutdown();
    }
}
