//! Stress coverage over the `isp_backbone` scenario generator: a chain of
//! core routers with large seeded LPM tables and *no* TTL decrement — bounced
//! traffic terminates through the engine's loop detection instead, the
//! complementary termination regime to `tests/stress_fat_tree.rs`. Path
//! counts must grow with chain length (each router adds customer ports and
//! more specific routes), every delivered path must be satisfiable, and the
//! canonical report must be byte-identical across worker counts.

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::core::report::canonical_report_json_string;
use symnet_suite::solver::Solver;
use symnet_suite::testgen::generators::{isp_backbone, GeneratorConfig};

fn config(len: usize) -> GeneratorConfig {
    GeneratorConfig {
        seed: 0xBB_0B0E,
        size: len,
        entries: 12,
    }
}

fn run(len: usize) -> (symnet_suite::core::engine::ExecutionReport, usize) {
    let scenario = isp_backbone(&config(len));
    let engine = SymNet::with_config(
        scenario.network.clone(),
        ExecConfig {
            max_hops: scenario.max_hops,
            ..ExecConfig::default()
        },
    );
    let report = engine.inject(scenario.inject_at, scenario.inject_port, &scenario.packet);
    let delivered = report.delivered().count();
    (report, delivered)
}

#[test]
fn backbone_path_counts_grow_with_chain_length() {
    let (_, short) = run(2);
    let (_, long) = run(8);
    assert!(short >= 2, "a 2-router chain must deliver traffic: {short}");
    assert!(
        long > short,
        "an 8-router chain must deliver more buckets than a 2-router chain: {long} vs {short}"
    );
}

#[test]
fn backbone_buckets_are_satisfiable() {
    let (report, delivered) = run(4);
    assert!(delivered > 0);
    let mut solver = Solver::default();
    for path in report.delivered() {
        assert!(
            solver.model(&path.state.path_condition()).is_some(),
            "delivered path {} must admit a concrete packet",
            path.id
        );
    }
}

#[test]
fn backbone_reports_are_thread_invariant() {
    let scenario = isp_backbone(&config(6));
    let mut baseline = None;
    for threads in [1usize, 2, 8] {
        let engine = SymNet::with_config(
            scenario.network.clone(),
            ExecConfig {
                max_hops: scenario.max_hops,
                ..ExecConfig::default()
            }
            .with_threads(threads),
        );
        let report = engine.inject(scenario.inject_at, scenario.inject_port, &scenario.packet);
        let canonical = canonical_report_json_string(&report, &scenario.network);
        match &baseline {
            None => baseline = Some(canonical),
            Some(expected) => {
                assert_eq!(
                    &canonical, expected,
                    "canonical report at {threads} threads"
                )
            }
        }
    }
}
