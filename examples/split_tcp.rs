//! The §8.4 functional evaluation: the Split-TCP middlebox deployment of
//! Figure 10, with each documented production incident reproduced as a
//! verification finding (MTU blackhole behind the tunnel, missing VLAN
//! tagging, DHCP security appliance).
//!
//! ```text
//! cargo run --example split_tcp
//! ```

use symnet_suite::core::engine::SymNet;
use symnet_suite::core::verify::allowed_values;
use symnet_suite::models::scenarios::{split_tcp, SplitTcpConfig};
use symnet_suite::sefl::fields::ip_length;
use symnet_suite::sefl::packet::symbolic_tcp_packet;

fn run(label: &str, config: SplitTcpConfig) {
    let (network, topo) = split_tcp(config);
    let engine = SymNet::new(network);
    let report = engine.inject(topo.client, 0, &symbolic_tcp_packet());
    let internet_paths: Vec<_> = report.delivered_at(topo.internet, 0).collect();
    println!("\n=== {label} ===");
    println!(
        "paths explored: {}, reaching the Internet: {}",
        report.path_count(),
        internet_paths.len()
    );
    for path in &internet_paths {
        let via_proxy = path.ports_visited().iter().any(|p| p.starts_with("P:"));
        let mtu = allowed_values(path, &ip_length().field()).and_then(|s| s.max());
        println!("  via proxy: {via_proxy}; admitted IP length <= {mtu:?}");
    }
    if internet_paths.is_empty() {
        println!("  traffic is blackholed — the misconfiguration is caught statically");
    }
}

fn main() {
    run("Baseline side-band deployment", SplitTcpConfig::default());
    run(
        "IP-in-IP tunnel between R1 and the proxy (MTU shrinks by 20 bytes)",
        SplitTcpConfig {
            tunnel_to_proxy: true,
            ..Default::default()
        },
    );
    run(
        "Proxy strips VLAN tags and forgets to restore them",
        SplitTcpConfig {
            vlan_stripping_bug: true,
            ..Default::default()
        },
    );
    run(
        "Exit router enforces DHCP (MAC, IP) lease bindings",
        SplitTcpConfig {
            dhcp_security_check: true,
            ..Default::default()
        },
    );
}
