//! The §8.5 case study: verify the CS department network (access switches,
//! aggregation, master switch, Cisco ASA, department router). The run finds
//! the paper's two surprises: the default ASA configuration tampers with TCP
//! options, and the management VLAN is reachable from outside via the M1
//! router, bypassing the ASA entirely.
//!
//! ```text
//! cargo run --release --example department_network
//! ```

use symnet_suite::core::engine::{ExecConfig, SymNet};
use symnet_suite::models::scenarios::{department, DepartmentConfig};
use symnet_suite::models::tcp_options::{opt_key, option_kind, symbolic_options_metadata};
use symnet_suite::sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_suite::sefl::Instruction;

fn main() {
    let config = DepartmentConfig {
        access_switches: 6,
        mac_entries: 600,
        routes: 50,
    };
    let (network, topo) = department(config);
    println!(
        "department network: {} devices, {} ports",
        network.element_count(),
        network.port_count()
    );
    let engine = SymNet::with_config(
        network,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );

    // Outbound: a fully symbolic TCP packet from an office host.
    let outbound = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    let report = engine.inject(topo.office_switch, 0, &outbound);
    let internet: Vec<_> = report.delivered_at(topo.internet, 0).collect();
    println!(
        "\noffice → Internet: {} paths ({} total)",
        internet.len(),
        report.path_count()
    );
    for path in &internet {
        let via_asa = path.ports_visited().iter().any(|p| p.starts_with("ASA:"));
        let mptcp = path
            .state
            .read_meta(&opt_key(option_kind::MPTCP))
            .unwrap()
            .value;
        println!("  via ASA: {via_asa}; MPTCP option after the ASA: {mptcp} (0 = stripped)");
    }

    // Inbound: a purely symbolic packet injected at the exit router.
    let inbound = engine.inject(topo.exit_router, 0, &symbolic_l3_tcp_packet());
    let leaked: Vec<_> = inbound.delivered_at(topo.management, 0).collect();
    println!(
        "\ninbound scan: {} paths, management VLAN reachable on {} paths",
        inbound.path_count(),
        leaked.len()
    );
    for path in &leaked {
        let bypasses_asa = !path.ports_visited().iter().any(|p| p.starts_with("ASA:"));
        println!(
            "  leak path bypasses the ASA: {bypasses_asa} — 192.168.137.0/24 is exposed via M1"
        );
    }
}
