//! The §2 motivating example: are packet contents invariant across a chain of
//! IP-in-IP tunnels?  Header Space Analysis cannot answer this (a wildcard
//! output says nothing about equality with the input); symbolic execution
//! answers it directly, because an untouched field still holds the very same
//! symbolic value when it leaves the tunnel.
//!
//! ```text
//! cargo run --example tunnel_invariance
//! ```

use symnet_suite::core::engine::SymNet;
use symnet_suite::core::verify::{field_invariant, Tristate};
use symnet_suite::models::scenarios::tunnel_chain;
use symnet_suite::sefl::fields::{ip_dst, ip_src, tcp_dst, tcp_payload};
use symnet_suite::sefl::packet::symbolic_l3_tcp_packet;

fn main() {
    // A → E1 → E2 → D2 → D1 → B with two nested IP-in-IP tunnels.
    let (network, a, b) = tunnel_chain();
    let engine = SymNet::new(network);
    let report = engine.inject(a, 0, &symbolic_l3_tcp_packet());

    println!("paths explored: {}", report.path_count());
    let delivered: Vec<_> = report.delivered_at(b, 0).collect();
    println!("paths delivered to B: {}", delivered.len());

    for path in &delivered {
        println!("\npath via {:?}", path.ports_visited());
        for field in [
            ("IpSrc", ip_src().field()),
            ("IpDst", ip_dst().field()),
            ("TcpDst", tcp_dst().field()),
            ("TcpPayload", tcp_payload().field()),
        ] {
            let verdict = field_invariant(&report.injected, path, &field.1).unwrap();
            println!(
                "  {:<10} invariant across the tunnel chain: {:?}",
                field.0, verdict
            );
            assert_eq!(verdict, Tristate::Always, "{} must be invariant", field.0);
        }
    }
    println!("\nAll original header fields provably survive the double tunnel.");
}
