//! Quickstart: model a tiny network (a firewall in front of a NAT), inject a
//! symbolic TCP packet and inspect the execution paths SymNet explores.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use symnet_suite::core::engine::SymNet;
use symnet_suite::core::network::Network;
use symnet_suite::core::report::report_to_json_string;
use symnet_suite::core::verify;
use symnet_suite::models::nat::{nat, NatConfig};
use symnet_suite::sefl::cond::Condition;
use symnet_suite::sefl::fields::{ip_src, tcp_dst, tcp_src};
use symnet_suite::sefl::packet::symbolic_tcp_packet;
use symnet_suite::sefl::{ElementProgram, Instruction};

fn main() {
    // 1. Build the network: an HTTP-only firewall whose output feeds a NAT.
    let mut network = Network::new();
    let firewall = network.add_element(
        ElementProgram::new("http-firewall", 1, 1).with_any_input_code(Instruction::block(vec![
            Instruction::constrain(Condition::or(vec![
                Condition::eq(tcp_dst().field(), 80u64),
                Condition::eq(tcp_dst().field(), 443u64),
            ])),
            Instruction::forward(0),
        ])),
    );
    let gateway = network.add_element(nat("gateway-nat", NatConfig::default()));
    network.add_link(firewall, 0, gateway, 0);

    // 2. Inject a fully symbolic TCP packet at the firewall.
    let engine = SymNet::new(network);
    let report = engine.inject(firewall, 0, &symbolic_tcp_packet());

    // 3. Inspect the explored paths.
    println!(
        "explored {} paths, {} delivered",
        report.path_count(),
        report.delivered().count()
    );
    for path in report.delivered() {
        let ports: Vec<_> = path.ports_visited();
        println!("\npath #{} via {:?}", path.id, ports);
        // Which destination ports can reach the Internet side of the NAT?
        let allowed =
            verify::allowed_values(path, &tcp_dst().field()).expect("TcpDst is allocated");
        println!("  admitted TCP destination ports: {allowed:?}");
        // What does the NAT do to the source?
        let src = path.state.read_field(&ip_src().field(), "").unwrap();
        let sport = verify::allowed_values(path, &tcp_src().field()).unwrap();
        println!(
            "  source address after NAT: {} (source port range {:?}..={:?})",
            src.value,
            sport.min(),
            sport.max()
        );
        // Is the destination port left untouched end to end?
        let invariant =
            verify::field_invariant(&report.injected, path, &tcp_dst().field()).unwrap();
        println!("  TcpDst invariant across the network: {invariant:?}");
    }

    // 4. The same report in the paper's JSON format.
    println!(
        "\nJSON report:\n{}",
        report_to_json_string(&report, engine.network())
    );
}
