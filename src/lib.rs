//! `symnet-suite` — umbrella package for the SymNet reproduction workspace.
//!
//! This crate only re-exports the workspace crates so that the repository-level
//! integration tests (`tests/`) and examples (`examples/`) have a single
//! dependency root. See `DESIGN.md` for the crate inventory.

pub use symnet_core as core;
pub use symnet_hsa as hsa;
pub use symnet_klee as klee;
pub use symnet_models as models;
pub use symnet_parsers as parsers;
pub use symnet_sefl as sefl;
pub use symnet_solver as solver;
pub use symnet_testgen as testgen;
